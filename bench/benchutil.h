/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses. Each
 * bench binary reproduces one table or figure from the paper's
 * evaluation and prints the paper's expectation next to the measured
 * value so the shape comparison is explicit.
 *
 * Every checkpoint printed through expect() is also published into the
 * process metrics registry (bench.checks_passed / bench.checks_failed
 * plus a per-check gauge), so `--metrics-out FILE` turns any bench
 * into a machine-readable pass/fail report.
 */

#ifndef PT_BENCH_BENCHUTIL_H
#define PT_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstring>
#include <string>

#include "base/logging.h"
#include "base/threadpool.h"
#include "obs/registry.h"

namespace pt::bench
{

/** Parses --scale N / --csv / --jobs N / --metrics-out FILE flags. */
struct BenchArgs
{
    double scale = 1.0;     ///< workload scale factor
    bool csv = false;       ///< also print CSV blocks
    unsigned jobs = 0;      ///< 0: PT_JOBS / hardware default
    std::string metricsOut; ///< write the registry as JSON on finish

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--csv")) {
                a.csv = true;
            } else if (!std::strcmp(argv[i], "--scale") &&
                       i + 1 < argc) {
                a.scale = std::atof(argv[++i]);
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                a.jobs = static_cast<unsigned>(
                    std::atoi(argv[++i]));
            } else if (!std::strcmp(argv[i], "--metrics-out") &&
                       i + 1 < argc) {
                a.metricsOut = argv[++i];
            }
        }
        if (a.jobs)
            setDefaultJobs(a.jobs);
        return a;
    }
};

/** Prints the standard bench header. */
inline void
banner(const char *id, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", id, what);
    std::printf("palmtrace reproduction of \"A Trace-Driven Simulator"
                " For Palm OS Devices\" (ISPASS 2005)\n");
    std::printf("================================================="
                "=============\n\n");
}

/** Slug form of a check name for a registry gauge. */
inline std::string
checkSlug(const char *what)
{
    std::string s;
    bool lastSep = true;
    for (const char *p = what; *p; ++p) {
        char c = *p;
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
            s += c;
            lastSep = false;
        } else if (c >= 'A' && c <= 'Z') {
            s += static_cast<char>(c - 'A' + 'a');
            lastSep = false;
        } else if (!lastSep) {
            s += '_';
            lastSep = true;
        }
    }
    while (!s.empty() && s.back() == '_')
        s.pop_back();
    return s;
}

/** Prints a paper-vs-measured checkpoint line and records it. */
inline void
expect(const char *what, const std::string &paper,
       const std::string &measured, bool ok)
{
    std::printf("  %-46s paper: %-18s measured: %-18s %s\n", what,
                paper.c_str(), measured.c_str(),
                ok ? "[OK]" : "[DIVERGES]");
    auto &reg = obs::Registry::global();
    reg.counter(ok ? "bench.checks_passed" : "bench.checks_failed")
        .inc();
    reg.gauge("bench.check." + checkSlug(what)).set(ok ? 1.0 : 0.0);
}

/** Writes the registry when --metrics-out was given. Call at exit. */
inline void
finishMetrics(const BenchArgs &a)
{
    if (a.metricsOut.empty())
        return;
    std::string err;
    if (!obs::Registry::global().writeJson(a.metricsOut, &err))
        std::fprintf(stderr, "bench: %s\n", err.c_str());
    else
        std::fprintf(stderr, "metrics written to %s\n",
                     a.metricsOut.c_str());
}

} // namespace pt::bench

#endif // PT_BENCH_BENCHUTIL_H
