/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses. Each
 * bench binary reproduces one table or figure from the paper's
 * evaluation and prints the paper's expectation next to the measured
 * value so the shape comparison is explicit.
 */

#ifndef PT_BENCH_BENCHUTIL_H
#define PT_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstring>
#include <string>

#include "base/logging.h"

namespace pt::bench
{

/** Parses --scale N / --csv style flags. */
struct BenchArgs
{
    double scale = 1.0; ///< workload scale factor
    bool csv = false;   ///< also print CSV blocks

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--csv")) {
                a.csv = true;
            } else if (!std::strcmp(argv[i], "--scale") &&
                       i + 1 < argc) {
                a.scale = std::atof(argv[++i]);
            }
        }
        return a;
    }
};

/** Prints the standard bench header. */
inline void
banner(const char *id, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", id, what);
    std::printf("palmtrace reproduction of \"A Trace-Driven Simulator"
                " For Palm OS Devices\" (ISPASS 2005)\n");
    std::printf("================================================="
                "=============\n\n");
}

/** Prints a paper-vs-measured checkpoint line. */
inline void
expect(const char *what, const std::string &paper,
       const std::string &measured, bool ok)
{
    std::printf("  %-46s paper: %-18s measured: %-18s %s\n", what,
                paper.c_str(), measured.c_str(),
                ok ? "[OK]" : "[DIVERGES]");
}

} // namespace pt::bench

#endif // PT_BENCH_BENCHUTIL_H
