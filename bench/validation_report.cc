/**
 * @file
 * Regenerates the §3 validation study: the two-fold correlation
 * (activity logs §3.3, final states §3.4) over three test workloads
 * whose initial states chain — "the initial state of the second test
 * workload is the same as the final state for the first" — with the
 * third workload a game of Puzzle, exactly as in the paper. Each
 * session is replayed twice: from the bit-exact restored state and
 * from the HotSync-style logical import (which reproduces the paper's
 * benign date-field differences).
 */

#include <cstdio>

#include "base/table.h"
#include "bench/benchutil.h"
#include "core/palmsim.h"
#include "fault/faultplan.h"
#include "obs/registry.h"
#include "validate/correlate.h"

namespace
{

using namespace pt;

struct RunResult
{
    bool logPass;
    bool statePass;
    s64 maxLag;
    u64 benign;
    u64 significant;
};

RunResult
replayAndValidate(const core::Session &s, bool logicalImport)
{
    core::ReplayConfig cfg;
    cfg.logicalImportMode = logicalImport;
    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);
    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    device::SnapshotBus a(s.finalState);
    device::SnapshotBus b(r.finalState);
    auto stateCorr = validate::correlateStates(os::listDatabases(a),
                                               os::listDatabases(b));
    u64 benign = 0;
    for (const auto &d : stateCorr.diffs)
        if (d.benign())
            ++benign;
    auto &reg = obs::Registry::global();
    reg.counter(logCorr.pass() ? "validate.log_pass"
                               : "validate.log_fail")
        .inc();
    reg.counter(stateCorr.pass() ? "validate.state_pass"
                                 : "validate.state_fail")
        .inc();
    reg.counter("validate.benign_diffs").inc(benign);
    reg.counter("validate.significant_diffs")
        .inc(stateCorr.significantDiffs());
    reg.gauge("validate.max_lag_ticks")
        .max(static_cast<double>(logCorr.maxTickLag));
    return {logCorr.pass(), stateCorr.pass(), logCorr.maxTickLag,
            benign, stateCorr.significantDiffs()};
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    setLogQuiet(true);
    bench::banner("§3", "System validation: log and final-state "
                        "correlation over three chained workloads");

    // Three chained workloads: each starts where the previous ended.
    core::PalmSimulator sim;
    std::vector<core::Session> sessions;

    // Workload 1: scripted mixed usage.
    sim.beginCollection();
    {
        workload::UserModelConfig cfg;
        cfg.seed = 31;
        cfg.interactions = 8;
        cfg.meanIdleTicks = 4'000;
        sim.runUser(cfg);
    }
    sessions.push_back(sim.endCollection());

    // Workload 2: scripted, starting from workload 1's final state.
    sim.beginCollection();
    {
        workload::UserModelConfig cfg;
        cfg.seed = 32;
        cfg.interactions = 8;
        cfg.meanIdleTicks = 4'000;
        cfg.tapWeight = 0.5;
        cfg.strokeWeight = 0.3;
        sim.runUser(cfg);
    }
    sessions.push_back(sim.endCollection());

    // Workload 3: a game of Puzzle (§3.2).
    sim.beginCollection();
    {
        auto &dev = sim.device();
        dev.io().buttonsSet(device::Btn::App3);
        dev.runUntilIdle();
        dev.io().buttonsSet(0);
        dev.runUntilIdle();
        Rng rng(99);
        for (int i = 0; i < 40; ++i) {
            u16 x = static_cast<u16>(rng.below(4) * 40 + 20);
            u16 y = static_cast<u16>(rng.below(4) * 40 + 20);
            dev.io().penTouch(x, y);
            dev.runUntilTick(dev.ticks() + 4);
            dev.io().penRelease();
            dev.runUntilTick(dev.ticks() + 40);
            dev.runUntilIdle();
        }
    }
    sessions.push_back(sim.endCollection());

    TextTable t("Validation results (three chained test workloads)");
    t.setHeader({"Workload", "Mode", "Log corr", "Max lag (ticks)",
                 "Benign diffs", "Significant diffs", "Final state"});
    bool allPass = true;
    const char *names[3] = {"script 1", "script 2", "Puzzle game"};
    for (int i = 0; i < 3; ++i) {
        for (bool imported : {false, true}) {
            RunResult r = replayAndValidate(sessions[i], imported);
            t.addRow({names[i],
                      imported ? "logical import" : "bit restore",
                      r.logPass ? "PASS" : "FAIL",
                      std::to_string(r.maxLag),
                      std::to_string(r.benign),
                      std::to_string(r.significant),
                      r.statePass ? "PASS" : "FAIL"});
            allPass = allPass && r.logPass && r.statePass;
        }
    }
    std::printf("%s\n", t.render().c_str());

    bench::expect("replayed inputs match the user's inputs",
                  "virtually the same inputs (bursts < 20 ticks)",
                  allPass ? "all pass" : "FAILURES", allPass);
    bench::expect("final states correlate",
                  "only date-field / psysLaunchDB differences",
                  allPass ? "only benign diffs" : "FAILURES", allPass);

    // Divergence-recovery check: drop one delivery from workload 1's
    // replay and let the self-recovering engine repair it. The final
    // state must come back bit-identical to a clean recovering run.
    {
        const core::Session &s = sessions[0];
        core::ReplayConfig cleanCfg;
        cleanCfg.options.recover = true;
        core::ReplayResult clean =
            core::PalmSimulator::replaySession(s, cleanCfg);

        fault::ScriptedReplayFaults faults;
        faults.dropOnceAtAttempt(0);
        core::ReplayConfig faultCfg;
        faultCfg.options.recover = true;
        faultCfg.options.faultHook = &faults;
        core::ReplayResult repaired =
            core::PalmSimulator::replaySession(s, faultCfg);

        const auto &st = repaired.replayStats;
        bool bitExact = repaired.finalState.fingerprint() ==
                        clean.finalState.fingerprint();
        bool recovered = bitExact && st.divergencesDetected >= 1 &&
                         st.recoveryRewinds >= 1 &&
                         st.recordsSkipped == 0;
        std::printf("\n  divergence recovery: %llu fault(s) injected, "
                    "%llu divergence(s), %llu rewind(s), %llu "
                    "record(s) skipped\n",
                    static_cast<unsigned long long>(st.faultsInjected),
                    static_cast<unsigned long long>(
                        st.divergencesDetected),
                    static_cast<unsigned long long>(st.recoveryRewinds),
                    static_cast<unsigned long long>(st.recordsSkipped));
        bench::expect("dropped record repaired by rewind",
                      "deterministic replay (bit-exact state)",
                      bitExact ? "bit-exact after recovery"
                               : "STATE DIVERGED",
                      recovered);
        allPass = allPass && recovered;
    }
    int exitCode = allPass ? 0 : 1;
    bench::finishMetrics(args);
    return exitCode;
}
