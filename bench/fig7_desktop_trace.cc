/**
 * @file
 * Regenerates Figure 7: "Miss Rates For A Desktop Address Trace".
 *
 * The paper runs the same small cache configurations over a desktop
 * trace from the BYU Trace Distribution Center to show that "the
 * small cache sizes used in this study exhibit the same miss rate
 * trends found in larger caches used in desktop systems". That
 * repository no longer exists; palmtrace substitutes its deterministic
 * synthetic desktop trace (documented in DESIGN.md) and checks the
 * same trends: monotone improvement with size, 32 B lines helping
 * sequential code, associativity helping conflict misses.
 */

#include <cstdio>

#include <cstring>

#include "base/table.h"
#include "bench/benchutil.h"
#include "bench/sweeputil.h"
#include "cache/cache.h"
#include "trace/dinero.h"
#include "trace/memtrace.h"
#include "workload/desktoptrace.h"

int
main(int argc, char **argv)
{
    using namespace pt;
    auto args = bench::BenchArgs::parse(argc, argv);
    setLogQuiet(true);
    bench::banner("Figure 7", "Miss Rates For A Desktop Address Trace");

    // An external Dinero-format trace can stand in for the synthetic
    // one: fig7_desktop_trace --din /path/to/trace.din
    const char *dinPath = nullptr;
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--din"))
            dinPath = argv[i + 1];

    trace::TraceBuffer refs;
    auto record = [&](Addr a, u8) {
        refs.onRef(a, m68k::AccessKind::Read, device::RefClass::Ram);
    };
    if (dinPath) {
        s64 n = trace::readDineroFile(dinPath, record);
        if (n < 0) {
            std::fprintf(stderr, "cannot read %s\n", dinPath);
            return 1;
        }
        std::printf("replayed %lld references from %s\n\n",
                    static_cast<long long>(n), dinPath);
    } else {
        workload::DesktopTraceConfig tc;
        tc.refs = static_cast<u64>(4'000'000 * args.scale);
        std::printf("generating %llu-reference synthetic desktop "
                    "trace...\n\n",
                    static_cast<unsigned long long>(tc.refs));
        workload::DesktopTraceGen gen(tc);
        gen.generate(record);
    }

    bench::TimedSweep sweep =
        bench::runSweepTimed(cache::CacheSweep::paper56(), refs);
    std::printf("sweep: %.3fs sequential, %.3fs with %u jobs "
                "(%.2fx)\n\n",
                sweep.seqSeconds, sweep.parSeconds, sweep.jobs,
                sweep.speedup());

    TextTable t("Figure 7 — desktop trace miss rate (%)");
    t.setHeader({"Size", "16B/1w", "16B/2w", "16B/4w", "16B/8w",
                 "32B/1w", "32B/2w", "32B/4w", "32B/8w"});
    const auto &caches = sweep.caches;
    auto missOf = [&](u32 size, u32 line, u32 assoc) {
        for (const auto &c : caches) {
            if (c.config().sizeBytes == size &&
                c.config().lineBytes == line &&
                c.config().assoc == assoc) {
                return c.stats().missRate();
            }
        }
        return -1.0;
    };
    for (u32 size : cache::CacheSweep::paperSizes()) {
        std::vector<std::string> row;
        row.push_back(size >= 1024 ? std::to_string(size / 1024) + "KB"
                                   : std::to_string(size) + "B");
        for (u32 line : {16u, 32u})
            for (u32 assoc : {1u, 2u, 4u, 8u})
                row.push_back(TextTable::num(
                    missOf(size, line, assoc) * 100.0, 3));
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    if (args.csv)
        std::printf("%s\n", t.renderCsv().c_str());

    // Same-trend checks as the handheld runs (Figure 5).
    bool sizeMono = true;
    for (u32 line : {16u, 32u}) {
        for (u32 assoc : {1u, 2u, 4u, 8u}) {
            double prev = 1.0;
            for (u32 size : cache::CacheSweep::paperSizes()) {
                double mr = missOf(size, line, assoc);
                if (mr > prev * 1.05)
                    sizeMono = false;
                prev = mr;
            }
        }
    }
    bench::expect("miss rate decreases with cache size",
                  "same trend as handheld",
                  sizeMono ? "monotone" : "violated", sizeMono);

    double spread = missOf(256, 16, 1) / missOf(16384, 32, 8);
    bool spreadOk = spread > 3.0;
    bench::expect("dynamic range across configurations",
                  "small caches clearly worse",
                  TextTable::num(spread, 1) + "x", spreadOk);
    int exitCode = sizeMono && spreadOk && sweep.identical &&
                           sweep.speedOk
                       ? 0
                       : 1;
    bench::finishMetrics(args);
    return exitCode;
}
