/**
 * @file
 * Ablation studies over a replayed session, extending the paper's §4
 * case study along its own future-work axis ("evaluate various
 * hardware modifications to Palm OS devices"):
 *
 *  1. replacement policy: the paper fixes LRU ("the most common
 *     algorithm"); how much does that choice matter?
 *  2. two-level hierarchy: does a small L1 + larger L2 beat a single
 *     level on this workload?
 *  3. energy: §4.1 claims a cache "can reduce the battery consumption
 *     for portable devices [22]"; the energy model quantifies it.
 */

#include <cstdio>

#include "base/table.h"
#include "base/threadpool.h"
#include "bench/benchutil.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/palmsim.h"
#include "trace/memtrace.h"

namespace
{

using namespace pt;

/** Replays one session into a trace buffer for offline experiments. */
trace::TraceBuffer
collectTrace(double scale)
{
    workload::UserModelConfig cfg =
        workload::table1Presets()[0].config;
    cfg.interactions =
        static_cast<u32>(cfg.interactions * (scale > 0 ? scale : 1));
    core::Session session = core::PalmSimulator::collect(cfg);
    trace::TraceBuffer buffer;
    core::ReplayConfig rc;
    rc.extraRefSink = &buffer;
    core::PalmSimulator::replaySession(session, rc);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    setLogQuiet(true);
    bench::banner("Ablations", "Replacement policy, two-level "
                               "hierarchy, and energy");

    std::printf("collecting reference trace...\n");
    trace::TraceBuffer buffer = collectTrace(args.scale);
    const auto &recs = buffer.records();
    std::printf("%zu references captured\n\n", recs.size());

    u64 ramRefs = 0, flashRefs = 0;
    for (const auto &r : recs)
        (r.cls ? flashRefs : ramRefs) += 1;
    std::printf("no-cache baseline: %.3f cycles\n\n",
                cache::CacheStats::noCacheAccessTime(ramRefs,
                                                     flashRefs));

    // --- 1. replacement policy ---
    // Each policy run replays the whole buffered trace through an
    // independent cache, so the runs fan out over the worker pool.
    TextTable t1("Replacement policy (4KB/32B/2-way)");
    t1.setHeader({"Policy", "Miss rate", "T_eff (cycles)"});
    const std::vector<cache::Policy> policies{
        cache::Policy::Lru, cache::Policy::Fifo,
        cache::Policy::Random};
    std::vector<cache::CacheStats> policyStats =
        ThreadPool::shared().parallelMap(
            policies, [&](const cache::Policy &policy) {
                cache::CacheConfig cfg{4096, 32, 2, policy};
                cache::Cache c(cfg);
                for (const auto &r : recs)
                    c.access(r.addr, r.cls != 0);
                return c.stats();
            });
    double lruMiss = 0, randomMiss = 0;
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const cache::CacheStats &st = policyStats[i];
        t1.addRow({cache::policyName(policies[i]),
                   TextTable::percent(st.missRate(), 3),
                   TextTable::num(st.avgAccessTimePaper(), 3)});
        if (policies[i] == cache::Policy::Lru)
            lruMiss = st.missRate();
        if (policies[i] == cache::Policy::Random)
            randomMiss = st.missRate();
    }
    std::printf("%s\n", t1.render().c_str());
    bool lruOk = lruMiss <= randomMiss * 1.10;
    bench::expect("LRU competitive with alternatives",
                  "LRU is the standard choice",
                  TextTable::percent(lruMiss, 2) + " vs " +
                      TextTable::percent(randomMiss, 2) + " (random)",
                  lruOk);

    // --- 2. two-level hierarchy ---
    std::printf("\n");
    TextTable t2("Two-level hierarchy (T_l1=1, T_l2=4 cycles)");
    t2.setHeader({"Organization", "L1 miss", "L2 miss", "T_avg"});
    cache::CacheConfig l1Small{1024, 32, 2, cache::Policy::Lru};
    cache::CacheConfig l2Big{16384, 32, 4, cache::Policy::Lru};

    cache::Cache l1Only(l1Small);
    for (const auto &r : recs)
        l1Only.access(r.addr, r.cls != 0);
    double tL1Only = l1Only.stats().avgAccessTimePaper();
    t2.addRow({"1KB L1 only",
               TextTable::percent(l1Only.stats().missRate(), 2), "-",
               TextTable::num(tL1Only, 3)});

    cache::TwoLevelCache two(l1Small, l2Big);
    for (const auto &r : recs)
        two.access(r.addr, r.cls != 0);
    double tTwo = two.avgAccessTime();
    t2.addRow({"1KB L1 + 16KB L2",
               TextTable::percent(two.l1().stats().missRate(), 2),
               TextTable::percent(two.l2().stats().missRate(), 2),
               TextTable::num(tTwo, 3)});
    std::printf("%s\n", t2.render().c_str());
    // Honest ablation finding: with backing memory at only 1-3
    // cycles (the m515's RAM/flash), a 4-cycle L2 cannot pay off —
    // the L2 sees mostly streaming misses. Multi-level caching is a
    // desktop-era answer to a latency gap this device does not have.
    bool l2Unwarranted = tTwo >= tL1Only;
    bench::expect("an L2 is NOT warranted on m515-class memory",
                  "flash costs only 3 cycles",
                  TextTable::num(tTwo, 3) + " vs " +
                      TextTable::num(tL1Only, 3) + " cycles (L1 only)",
                  l2Unwarranted);

    // --- 3. energy ---
    std::printf("\n");
    cache::EnergyModel energy;
    TextTable t3("Memory-system energy per session (nominal nJ/access)");
    t3.setHeader({"Configuration", "Energy (mJ)", "Savings"});
    double baseMj = energy.uncachedEnergyMj(ramRefs, flashRefs);
    t3.addRow({"no cache", TextTable::num(baseMj, 2), "-"});
    const std::vector<u32> sizes{1024u, 4096u, 16384u};
    std::vector<cache::CacheStats> sizeStats =
        ThreadPool::shared().parallelMap(
            sizes, [&](const u32 &size) {
                cache::CacheConfig cfg{size, 32, 2,
                                       cache::Policy::Lru};
                cache::Cache c(cfg);
                for (const auto &r : recs)
                    c.access(r.addr, r.cls != 0);
                return c.stats();
            });
    double bestSavings = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        cache::CacheConfig cfg{sizes[i], 32, 2, cache::Policy::Lru};
        double sv = energy.savings(sizeStats[i]);
        bestSavings = std::max(bestSavings, sv);
        t3.addRow({cfg.name(),
                   TextTable::num(energy.cachedEnergyMj(sizeStats[i]),
                                  2),
                   TextTable::percent(sv, 1)});
    }
    std::printf("%s\n", t3.render().c_str());
    bool energyOk = bestSavings > 0.4;
    bench::expect("a cache cuts memory-system energy",
                  "\"can reduce the battery consumption\" (§4.1)",
                  TextTable::percent(bestSavings, 1) + " savings",
                  energyOk);

    int exitCode = lruOk && l2Unwarranted && energyOk ? 0 : 1;
    bench::finishMetrics(args);
    return exitCode;
}
