/**
 * @file
 * Regenerates Figure 6: "Average Effective Memory Access Times" for
 * the same 56 cache configurations as Figure 5, computed with Eq 2
 * (T_hit = 1 cycle, T_ram_miss = 1, T_flash_miss = 3, as on the
 * Dragonball MC68VZ328).
 *
 * Paper headline: "In all configurations, adding a cache
 * significantly reduces the average memory access time" — "even
 * relatively small caches can reduce the effective memory access time
 * by 50% or more! This is mostly due to the flash memory receiving
 * the majority of references."
 */

#include <cstdio>

#include "base/table.h"
#include "bench/benchutil.h"
#include "bench/sweeputil.h"
#include "cache/cache.h"
#include "core/palmsim.h"
#include "trace/memtrace.h"

int
main(int argc, char **argv)
{
    using namespace pt;
    auto args = bench::BenchArgs::parse(argc, argv);
    setLogQuiet(true);
    bench::banner("Figure 6",
                  "Average Effective Memory Access Times (Eq 2)");

    workload::UserModelConfig cfg =
        workload::table1Presets()[0].config;
    cfg.interactions = static_cast<u32>(cfg.interactions * args.scale);
    std::printf("collecting and replaying session 1...\n");
    core::Session session = core::PalmSimulator::collect(cfg);

    trace::TraceBuffer refs;
    core::ReplayConfig rc;
    rc.extraRefSink = &refs;
    core::ReplayResult res =
        core::PalmSimulator::replaySession(session, rc);

    bench::TimedSweep sweep =
        bench::runSweepTimed(cache::CacheSweep::paper56(), refs);
    std::printf("sweep: %.3fs sequential, %.3fs with %u jobs "
                "(%.2fx)\n",
                sweep.seqSeconds, sweep.parSeconds, sweep.jobs,
                sweep.speedup());

    double noCache = res.refs.avgMemCycles();
    std::printf("no-cache baseline (Eq 3): %.3f cycles\n\n", noCache);

    TextTable t("Figure 6 — average effective access time (cycles)");
    t.setHeader({"Size", "16B/1w", "16B/2w", "16B/4w", "16B/8w",
                 "32B/1w", "32B/2w", "32B/4w", "32B/8w"});
    const auto &caches = sweep.caches;
    auto teffOf = [&](u32 size, u32 line, u32 assoc) {
        for (const auto &c : caches) {
            if (c.config().sizeBytes == size &&
                c.config().lineBytes == line &&
                c.config().assoc == assoc) {
                return c.stats().avgAccessTimePaper();
            }
        }
        return -1.0;
    };
    for (u32 size : cache::CacheSweep::paperSizes()) {
        std::vector<std::string> row;
        row.push_back(size >= 1024 ? std::to_string(size / 1024) + "KB"
                                   : std::to_string(size) + "B");
        for (u32 line : {16u, 32u})
            for (u32 assoc : {1u, 2u, 4u, 8u})
                row.push_back(
                    TextTable::num(teffOf(size, line, assoc), 3));
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
    if (args.csv)
        std::printf("%s\n", t.renderCsv().c_str());

    // Shape checks.
    bool allReduce = true;
    int halved = 0, total = 0;
    double best = 1e9, worst = 0;
    for (const auto &c : caches) {
        double teff = c.stats().avgAccessTimePaper();
        allReduce = allReduce && teff < noCache;
        ++total;
        if (teff <= noCache * 0.5)
            ++halved;
        best = std::min(best, teff);
        worst = std::max(worst, teff);
    }
    bench::expect("every configuration reduces T_eff",
                  "all 56 below baseline",
                  allReduce ? "all below" : "some above", allReduce);
    bool halfOk = halved >= total / 2;
    bench::expect("small caches halve the access time",
                  ">=50% reduction common",
                  std::to_string(halved) + "/" + std::to_string(total) +
                      " configs halve it",
                  halfOk);
    std::printf("\n  T_eff range across configs: %.3f - %.3f cycles "
                "(baseline %.3f)\n",
                best, worst, noCache);
    int exitCode = allReduce && halfOk && sweep.identical &&
                           sweep.speedOk
                       ? 0
                       : 1;
    bench::finishMetrics(args);
    return exitCode;
}
