/**
 * @file
 * Regenerates the §1.1 comparison against Palmist (Gannamaraju &
 * Chandra), the prior Palm instrumentation system the paper improves
 * on. Paper claims:
 *
 *  - Palmist hooks (nearly) every system call, so "the time required
 *    for each system call to execute increased by two or more orders
 *    of magnitude" — unacceptable overhead.
 *  - Palmist "generated 1.34 MB of records on the handheld to perform
 *    a set of tasks that requires about one minute of execution" —
 *    prohibitive storage on an 8-16 MB device.
 *  - The paper's five-hack scheme logs only real user input, with
 *    per-call overhead in the millisecond range and 12/16-byte
 *    records.
 */

#include <cstdio>

#include "base/table.h"
#include "bench/benchutil.h"
#include "hacks/hackmgr.h"
#include "os/guestrun.h"
#include "os/pilotos.h"
#include "trace/activitylog.h"
#include "workload/usermodel.h"

namespace
{

using namespace pt;

/** Average emulated cycles per EvtGetEvent-style trap call. */
double
cyclesPerTrap(device::Device &dev, u16 selector, u32 calls)
{
    os::GuestRunner runner(dev);
    u64 cycles = runner.run([&](m68k::CodeBuilder &b) {
        using namespace m68k::ops;
        auto loop = b.newLabel();
        b.move(m68k::Size::L, imm(calls - 1), dr(6));
        b.bind(loop);
        b.moveq(1, 1);
        b.trapSel(15, selector);
        b.dbra(6, loop);
        b.stop(0x2700);
    });
    return static_cast<double>(cycles) / calls;
}

/** Bytes of activity-log records currently stored on the device. */
u64
logBytes(device::Device &dev)
{
    trace::ActivityLog log = trace::ActivityLog::extract(dev.bus());
    u64 bytes = 0;
    for (const auto &r : log.records)
        bytes += r.isLong ? hacks::kLogRecLong : hacks::kLogRecShort;
    return bytes;
}

/** One busy minute of guest time under the given instrumentation. */
u64
busyMinute(bool palmist)
{
    device::Device dev;
    os::RomSymbols syms = os::setupDevice(dev);
    hacks::HackManager mgr(dev, syms);
    if (palmist)
        mgr.installPalmistMode();
    else
        mgr.installCollectionHacks();

    // A densely interactive minute (no long idles). Tap-heavy:
    // taps dispatch through many system calls per event (like real
    // Palm UI interaction), which is what Palmist amplifies; pen
    // strokes would be logged sample-by-sample under both schemes
    // and dilute the comparison.
    workload::UserModelConfig cfg;
    cfg.seed = 77;
    cfg.interactions = 12;
    cfg.meanIdleTicks = 200;
    cfg.meanThinkTicks = 60;
    cfg.strokeWeight = 0.10;
    cfg.tapWeight = 0.65;
    cfg.appSwitchWeight = 0.15;
    cfg.scrollHoldWeight = 0.10;
    workload::UserModel user(dev, cfg);
    Ticks start = dev.ticks();
    user.runSession();
    Ticks elapsed = dev.ticks() - start;
    // Normalize to one minute of guest time.
    u64 bytes = logBytes(dev);
    return bytes * (60 * kTicksPerSecond) / (elapsed ? elapsed : 1);
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    (void)args;
    setLogQuiet(true);
    bench::banner("§1.1", "Five-hack collection vs Palmist-style "
                          "hook-everything");

    // --- per-call overhead of an innocuous system call ---
    const u16 probe = os::Trap::TimGetTicks; // hot, tiny routine
    double baseline, fiveHack, palmist;
    {
        device::Device dev;
        os::setupDevice(dev);
        baseline = cyclesPerTrap(dev, probe, 3000);
    }
    {
        device::Device dev;
        os::RomSymbols syms = os::setupDevice(dev);
        hacks::HackManager mgr(dev, syms);
        mgr.installCollectionHacks();
        fiveHack = cyclesPerTrap(dev, probe, 3000);
    }
    {
        device::Device dev;
        os::RomSymbols syms = os::setupDevice(dev);
        hacks::HackManager mgr(dev, syms);
        mgr.installPalmistMode();
        palmist = cyclesPerTrap(dev, probe, 3000);
    }

    TextTable t("Per-call cost of a hot system call (TimGetTicks)");
    t.setHeader({"Instrumentation", "cycles/call", "vs uninstrumented"});
    t.addRow({"none", TextTable::num(baseline, 0), "1.0x"});
    t.addRow({"five hacks (this paper)", TextTable::num(fiveHack, 0),
              TextTable::num(fiveHack / baseline, 1) + "x"});
    t.addRow({"Palmist-style (all calls)", TextTable::num(palmist, 0),
              TextTable::num(palmist / baseline, 1) + "x"});
    std::printf("%s\n", t.render().c_str());

    // The five-hack scheme leaves un-hacked calls untouched; Palmist
    // burdens every call by orders of magnitude.
    bool fiveOk = fiveHack < baseline * 1.2;
    bench::expect("five hacks leave other system calls untouched",
                  "negligible overhead",
                  TextTable::num(fiveHack / baseline, 2) + "x", fiveOk);
    bool palmistBad = palmist > baseline * 100.0;
    bench::expect("Palmist per-call overhead",
                  "two or more orders of magnitude",
                  TextTable::num(palmist / baseline, 0) + "x",
                  palmistBad);

    // --- storage for one busy minute ---
    u64 fiveBytes = busyMinute(false);
    u64 palmistBytes = busyMinute(true);
    TextTable s("Log storage for one busy minute of usage");
    s.setHeader({"Instrumentation", "bytes/minute"});
    s.addRow({"five hacks", std::to_string(fiveBytes)});
    s.addRow({"Palmist-style", std::to_string(palmistBytes)});
    std::printf("\n%s\n", s.render().c_str());

    bool storageGrows = palmistBytes > fiveBytes * 5 / 4;
    bench::expect("Palmist logs strictly more than the five hacks",
                  "every system call recorded",
                  std::to_string(palmistBytes / 1024) + " KB vs " +
                      std::to_string(fiveBytes / 1024) + " KB per min",
                  storageGrows);

    // Palmist's record volume scales with the hooked-call rate. Palm
    // OS 3.5 dispatches every library call through one of its 880
    // traps, roughly (880 / 19) times PilotOS's per-event system-call
    // density; scaling the measured rate by the call-surface ratio
    // recovers the magnitude the paper reports.
    double extrapolated =
        static_cast<double>(palmistBytes) * 880.0 /
        static_cast<double>(os::Trap::Count - 1);
    bool extrapOk = extrapolated > 0.13e6 && extrapolated < 13e6;
    bench::expect("extrapolated to Palm OS 3.5's 880-trap surface",
                  "1.34 MB per minute",
                  TextTable::num(extrapolated / 1e6, 2) + " MB/min",
                  extrapOk);
    std::printf("\nNote: PilotOS exposes %d system calls vs Palm OS "
                "3.5's 880 (where every library call is a trap), so "
                "absolute Palmist volumes scale with the hooked-call "
                "surface; the per-call overhead blow-up above is the "
                "directly reproduced result.\n",
                os::Trap::Count - 1);
    int exitCode = fiveOk && palmistBad && storageGrows && extrapOk ? 0 : 1;
    bench::finishMetrics(args);
    return exitCode;
}
