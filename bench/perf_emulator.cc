/**
 * @file
 * Emulator performance report: emulated instruction throughput
 * (MIPS), guest system-call cost, and full-session replay speed,
 * each measured under BOTH execution engines — the decode-every-time
 * interpreter and the basic-block translation cache (DESIGN.md §15).
 *
 * The translator is only allowed to be fast because it is identical:
 * every timed comparison doubles as a differential check (same
 * instruction count, same guest cycles, same reference totals, same
 * final-state fingerprint), and the report fails unless the
 * translation cache delivers >= 1.5x instruction throughput on the
 * desktop-mix compute workload. Everything is published through the
 * metrics registry (`--metrics-out FILE`).
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "base/table.h"
#include "bench/benchutil.h"
#include "core/palmsim.h"
#include "m68k/codebuilder.h"
#include "m68k/execmode.h"
#include "os/guestrun.h"
#include "os/pilotos.h"

namespace
{

using namespace pt;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The desktop-mix compute kernel (the Figure 7 workload's
 * instruction diet): arithmetic, rotates, a RAM load/store pair, and
 * a conditional loop edge.
 */
void
emitComputeKernel(m68k::CodeBuilder &b, u32 iters)
{
    using namespace m68k::ops;
    auto loop = b.newLabel();
    b.lea(absl(0x00020000), 1);
    b.move(m68k::Size::L, imm(iters), dr(0));
    b.bind(loop);
    b.add(m68k::Size::L, dr(3), dr(2));
    b.rol(m68k::Size::L, 3, 2);
    b.move(m68k::Size::L, dr(2), ind(1));
    b.move(m68k::Size::L, ind(1), dr(4));
    b.eor(m68k::Size::L, 4, dr(3));
    b.subq(m68k::Size::L, 1, dr(0));
    b.bcc(m68k::Cond::NE, loop);
    b.stop(0x2700);
}

/** One engine's measurement of a guest program. */
struct EngineRun
{
    double seconds = 0;
    u64 instructions = 0;
    u64 cycles = 0;     ///< guest CPU cycles consumed
    u64 refs = 0;       ///< bus references observed
    double mips() const
    {
        return static_cast<double>(instructions) / seconds / 1e6;
    }
};

EngineRun
runKernel(m68k::ExecMode mode, u32 iters, unsigned repeats,
          const std::function<void(m68k::CodeBuilder &, u32)> &emit)
{
    device::Device dev;
    os::setupDevice(dev);
    dev.cpu().setExecMode(mode);
    os::GuestRunner runner(dev);

    auto body = [&](m68k::CodeBuilder &b) { emit(b, iters); };
    runner.run(body); // warm-up: page in, translate, settle

    EngineRun r;
    u64 i0 = dev.instructionsRetired();
    u64 c0 = dev.cpu().totalCycles();
    u64 r0 = dev.bus().totalRefs();
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned n = 0; n < repeats; ++n)
        runner.run(body);
    r.seconds = secondsSince(t0);
    r.instructions = dev.instructionsRetired() - i0;
    r.cycles = dev.cpu().totalCycles() - c0;
    r.refs = dev.bus().totalRefs() - r0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pt;
    auto args = bench::BenchArgs::parse(argc, argv);
    setLogQuiet(true);
    bench::banner("Emulator performance",
                  "interpreter vs translation cache");

    const u32 iters = static_cast<u32>(400'000 * args.scale);
    const unsigned repeats = 3;

    // --- desktop-mix compute throughput ---
    EngineRun ci = runKernel(m68k::ExecMode::Interp, iters, repeats,
                             emitComputeKernel);
    EngineRun ct = runKernel(m68k::ExecMode::Translate, iters,
                             repeats, emitComputeKernel);
    double speedup = ct.mips() / ci.mips();

    // --- guest system-call round-trip ---
    auto emitSyscalls = [](m68k::CodeBuilder &b, u32 n) {
        using namespace m68k::ops;
        auto loop = b.newLabel();
        b.move(m68k::Size::L, imm(n), dr(6));
        b.bind(loop);
        b.trapSel(15, os::Trap::TimGetTicks);
        b.subq(m68k::Size::L, 1, dr(6));
        b.bcc(m68k::Cond::NE, loop);
        b.stop(0x2700);
    };
    const u32 calls = static_cast<u32>(20'000 * args.scale);
    EngineRun si = runKernel(m68k::ExecMode::Interp, calls, repeats,
                             emitSyscalls);
    EngineRun st = runKernel(m68k::ExecMode::Translate, calls,
                             repeats, emitSyscalls);
    double usPerCallI = si.seconds * 1e6 / (calls * repeats);
    double usPerCallT = st.seconds * 1e6 / (calls * repeats);

    // --- full-session replay (collect once, replay per engine) ---
    workload::UserModelConfig cfg;
    cfg.seed = 5;
    cfg.interactions = 5;
    cfg.meanIdleTicks = 2'000;
    m68k::setDefaultExecMode(m68k::ExecMode::Interp);
    core::Session session = core::PalmSimulator::collect(cfg);

    auto replayWith = [&](m68k::ExecMode mode, EngineRun *out) {
        m68k::setDefaultExecMode(mode);
        auto t0 = std::chrono::steady_clock::now();
        core::ReplayResult r = core::PalmSimulator::replaySession(session);
        out->seconds = secondsSince(t0);
        out->instructions = r.instructions;
        out->cycles = r.cycles;
        out->refs = r.refs.totalRefs();
        return r.finalState.fingerprint();
    };
    EngineRun ri, rt;
    u64 fpInterp = replayWith(m68k::ExecMode::Interp, &ri);
    u64 fpTrans = replayWith(m68k::ExecMode::Translate, &rt);
    m68k::setDefaultExecMode(m68k::ExecMode::Interp);
    double replaySpeedup = ri.seconds / rt.seconds;

    TextTable t("Emulator — interpreter vs translation cache");
    t.setHeader({"Metric", "interp", "translate"});
    t.addRow({"compute MIPS", TextTable::num(ci.mips(), 1),
              TextTable::num(ct.mips(), 1)});
    t.addRow({"compute speedup", "1.00x",
              TextTable::num(speedup, 2) + "x"});
    t.addRow({"syscall round-trip (us)", TextTable::num(usPerCallI, 2),
              TextTable::num(usPerCallT, 2)});
    t.addRow({"session replay (s)", TextTable::num(ri.seconds, 3),
              TextTable::num(rt.seconds, 3)});
    t.addRow({"replay MIPS",
              TextTable::num(static_cast<double>(ri.instructions) /
                                 ri.seconds / 1e6, 1),
              TextTable::num(static_cast<double>(rt.instructions) /
                                 rt.seconds / 1e6, 1)});
    std::printf("%s\n", t.render().c_str());
    if (args.csv)
        std::printf("%s\n", t.renderCsv().c_str());

    auto &reg = obs::Registry::global();
    reg.gauge("emulator.interp_mips").set(ci.mips());
    reg.gauge("emulator.translate_mips").set(ct.mips());
    reg.gauge("emulator.translate_speedup").set(speedup);
    reg.gauge("emulator.syscall_us_interp").set(usPerCallI);
    reg.gauge("emulator.syscall_us_translate").set(usPerCallT);
    reg.gauge("emulator.replay_seconds_interp").set(ri.seconds);
    reg.gauge("emulator.replay_seconds_translate").set(rt.seconds);
    reg.gauge("emulator.replay_speedup").set(replaySpeedup);

    // Differential identity: the speed columns above are only
    // comparable (and the translator only shippable) if both engines
    // executed the exact same guest work.
    bool sameCompute = ci.instructions == ct.instructions &&
                       ci.cycles == ct.cycles && ci.refs == ct.refs;
    bool sameSyscall = si.instructions == st.instructions &&
                       si.cycles == st.cycles && si.refs == st.refs;
    bool sameReplay = ri.instructions == rt.instructions &&
                      ri.cycles == rt.cycles && ri.refs == rt.refs &&
                      fpInterp == fpTrans;
    bench::expect("compute kernel work, both engines", "identical",
                  sameCompute ? "identical" : "diverged", sameCompute);
    bench::expect("syscall kernel work, both engines", "identical",
                  sameSyscall ? "identical" : "diverged", sameSyscall);
    bench::expect("session replay state + refs", "identical",
                  sameReplay ? "identical" : "diverged", sameReplay);
    bool fastEnough = speedup >= 1.5;
    bench::expect("instruction-throughput speedup", ">= 1.5x",
                  TextTable::num(speedup, 2) + "x", fastEnough);

    int exitCode =
        sameCompute && sameSyscall && sameReplay && fastEnough ? 0
                                                               : 1;
    bench::finishMetrics(args);
    return exitCode;
}
