/**
 * @file
 * Host-performance benchmarks (google-benchmark): emulated
 * instruction throughput of the m68k core, guest system-call cost,
 * and session replay speed. These quantify the simulator itself — the
 * practical property the paper needs ("replay a multi-day session in
 * minutes on a desktop").
 */

#include <benchmark/benchmark.h>

#include "base/logging.h"
#include "core/palmsim.h"
#include "m68k/codebuilder.h"
#include "os/guestrun.h"
#include "os/pilotos.h"

namespace
{

using namespace pt;

/** A tight guest compute loop, measured in emulated instructions/s. */
void
BM_EmulatedMips(benchmark::State &state)
{
    pt::setLogQuiet(true);
    device::Device dev;
    os::setupDevice(dev);
    os::GuestRunner runner(dev);

    u64 executed = 0;
    for (auto _ : state) {
        u64 before = dev.instructionsRetired();
        runner.run([&](m68k::CodeBuilder &b) {
            using namespace m68k::ops;
            auto loop = b.newLabel();
            b.move(m68k::Size::L, imm(100'000), dr(0));
            b.bind(loop);
            b.add(m68k::Size::L, dr(1), dr(2));
            b.rol(m68k::Size::L, 3, 2);
            b.subq(m68k::Size::L, 1, dr(0));
            b.bcc(m68k::Cond::NE, loop);
            b.stop(0x2700);
        });
        executed += dev.instructionsRetired() - before;
    }
    state.counters["guest_mips"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatedMips)->Unit(benchmark::kMillisecond);

/** Guest system call round-trip (trap + dispatch + handler + rte). */
void
BM_GuestSystemCall(benchmark::State &state)
{
    pt::setLogQuiet(true);
    device::Device dev;
    os::setupDevice(dev);
    os::GuestRunner runner(dev);

    for (auto _ : state) {
        runner.run([&](m68k::CodeBuilder &b) {
            using namespace m68k::ops;
            auto loop = b.newLabel();
            b.move(m68k::Size::L, imm(10'000), dr(6));
            b.bind(loop);
            b.trapSel(15, os::Trap::TimGetTicks);
            b.subq(m68k::Size::L, 1, dr(6));
            b.bcc(m68k::Cond::NE, loop);
            b.stop(0x2700);
        });
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_GuestSystemCall)->Unit(benchmark::kMillisecond);

/** Full pipeline: collect + replay a small session. */
void
BM_SessionReplay(benchmark::State &state)
{
    pt::setLogQuiet(true);
    workload::UserModelConfig cfg;
    cfg.seed = 5;
    cfg.interactions = 5;
    cfg.meanIdleTicks = 2'000;
    core::Session session = core::PalmSimulator::collect(cfg);

    u64 totalRefs = 0;
    for (auto _ : state) {
        core::ReplayResult r =
            core::PalmSimulator::replaySession(session);
        totalRefs += r.refs.totalRefs();
    }
    state.counters["refs_per_s"] = benchmark::Counter(
        static_cast<double>(totalRefs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionReplay)->Unit(benchmark::kMillisecond);

/** Device boot (ROM build + heap install + guest boot). */
void
BM_DeviceProvisioning(benchmark::State &state)
{
    pt::setLogQuiet(true);
    for (auto _ : state) {
        device::Device dev;
        os::setupDevice(dev);
        benchmark::DoNotOptimize(dev.ticks());
    }
}
BENCHMARK(BM_DeviceProvisioning)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
