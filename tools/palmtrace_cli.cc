/**
 * @file
 * The palmtrace command-line driver.
 *
 * Subcommands cover the paper's whole workflow on session artifacts
 * saved as <base>.init.snap / <base>.log / <base>.final.snap:
 *
 *   palmtrace collect --out BASE [--seed N] [--interactions N]
 *                     [--idle TICKS] [--beams]
 *       synthesize a volunteer session and save its artifacts
 *
 *   palmtrace info BASE
 *       summarize a saved session (log mix, timestamps, states)
 *
 *   palmtrace replay BASE [--import] [--jitter N] [--recover]
 *       replay with profiling; print reference and timing measurements
 *       (--recover turns on online divergence detection with
 *       checkpoint-rewind recovery)
 *
 *   palmtrace validate BASE [--import]
 *       run the paper's two-fold validation and print both reports
 *
 *   palmtrace fsck <FILE | BASE>
 *       verify artifact integrity (frame header, checksum, and full
 *       structural parse); exit 0 when clean, 1 when corrupt
 *
 *   palmtrace sweep BASE [--csv]
 *       the §4 case study: 56-configuration miss rates and Eq 2 times
 *
 *   palmtrace disasm [--count N]
 *       disassemble the front of the PilotOS ROM (sanity/debugging)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/table.h"
#include "cache/cache.h"
#include "core/palmsim.h"
#include "m68k/disasm.h"
#include "validate/artifactcheck.h"
#include "validate/correlate.h"

namespace
{

using namespace pt;

/** Tiny argv scanner. */
struct Args
{
    int argc;
    char **argv;

    const char *
    value(const char *flag, const char *fallback = nullptr) const
    {
        for (int i = 0; i + 1 < argc; ++i)
            if (!std::strcmp(argv[i], flag))
                return argv[i + 1];
        return fallback;
    }

    bool
    has(const char *flag) const
    {
        for (int i = 0; i < argc; ++i)
            if (!std::strcmp(argv[i], flag))
                return true;
        return false;
    }

    /** First non-flag operand after the subcommand. */
    const char *
    operand() const
    {
        for (int i = 0; i < argc; ++i) {
            if (argv[i][0] == '-') {
                if (value(argv[i]) == argv[i + 1])
                    ++i; // skip the flag's value
                continue;
            }
            return argv[i];
        }
        return nullptr;
    }
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: palmtrace "
        "<collect|info|replay|validate|fsck|sweep|disasm>"
        " [options]\n"
        "see the file header of tools/palmtrace_cli.cc for details\n");
    return 2;
}

int
cmdCollect(const Args &a)
{
    const char *out = a.value("--out");
    if (!out) {
        std::fprintf(stderr, "collect: --out BASE is required\n");
        return 2;
    }
    workload::UserModelConfig cfg;
    cfg.seed = std::strtoull(a.value("--seed", "1"), nullptr, 0);
    cfg.interactions = static_cast<u32>(
        std::strtoul(a.value("--interactions", "12"), nullptr, 0));
    cfg.meanIdleTicks = static_cast<Ticks>(
        std::strtoul(a.value("--idle", "30000"), nullptr, 0));
    if (a.has("--beams"))
        cfg.beamWeight = 0.2;

    core::PalmSimulator sim;
    sim.beginCollection();
    auto stats = sim.runUser(cfg);
    core::Session s = sim.endCollection();
    std::string err;
    if (!s.save(out, &err)) {
        std::fprintf(stderr, "collect: %s\n", err.c_str());
        return 1;
    }
    std::printf("session saved to %s.{init.snap,log,final.snap}\n",
                out);
    std::printf("%zu log records; user did %u strokes, %u taps, "
                "%u switches, %u scrolls, %u beams over %.1f min\n",
                s.log.records.size(), stats.strokes, stats.taps,
                stats.appSwitches, stats.scrollHolds, stats.beams,
                static_cast<double>(stats.elapsedTicks) / 6000.0);
    return 0;
}

bool
loadSession(const Args &a, core::Session &s)
{
    const char *base = a.operand();
    if (!base) {
        std::fprintf(stderr, "missing session BASE operand\n");
        return false;
    }
    if (auto res = core::Session::load(base, s); !res) {
        std::fprintf(stderr, "cannot load session '%s': %s\n", base,
                     res.message().c_str());
        return false;
    }
    return true;
}

int
cmdInfo(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    TextTable t("Session summary");
    t.setHeader({"Quantity", "Value"});
    t.addRow({"log records", std::to_string(s.log.records.size())});
    t.addRow({"pen points",
              std::to_string(s.log.countOf(hacks::LogType::PenPoint))});
    t.addRow({"key events",
              std::to_string(s.log.countOf(hacks::LogType::Key))});
    t.addRow({"key-state polls",
              std::to_string(s.log.countOf(hacks::LogType::KeyState))});
    t.addRow({"notifies",
              std::to_string(s.log.countOf(hacks::LogType::Notify))});
    t.addRow({"random calls",
              std::to_string(s.log.countOf(hacks::LogType::Random))});
    t.addRow({"serial bytes",
              std::to_string(s.log.countOf(hacks::LogType::Serial))});
    if (!s.log.records.empty()) {
        t.addRow({"first tick",
                  std::to_string(s.log.records.front().tick)});
        t.addRow({"last tick",
                  std::to_string(s.log.records.back().tick)});
        t.addRow({"elapsed",
                  TextTable::hms(s.log.records.back().tick /
                                 kTicksPerSecond)});
    }
    device::SnapshotBus bus(s.finalState);
    t.addRow({"databases (final)",
              std::to_string(os::listDatabases(bus).size())});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdReplay(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    core::ReplayConfig cfg;
    cfg.logicalImportMode = a.has("--import");
    cfg.options.burstJitterTicks = static_cast<Ticks>(
        std::strtoul(a.value("--jitter", "0"), nullptr, 0));
    cfg.options.recover = a.has("--recover");
    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);
    if (r.replayStats.optionsRejected) {
        std::fprintf(stderr, "replay: %s\n",
                     r.replayStats.optionsError.c_str());
        return 2;
    }
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles        %llu (%.2f s guest time)\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / kCpuHz);
    std::printf("RAM refs      %llu\n",
                static_cast<unsigned long long>(r.refs.ramRefs()));
    std::printf("flash refs    %llu (%.1f%%)\n",
                static_cast<unsigned long long>(r.refs.flashRefs()),
                r.refs.flashFraction() * 100.0);
    std::printf("T_eff (Eq 3)  %.3f cycles (no cache)\n",
                r.refs.avgMemCycles());
    std::printf("events        %llu pen, %llu key, %llu serial; "
                "%llu key-state overrides, %llu seeds\n",
                static_cast<unsigned long long>(
                    r.replayStats.penEventsInjected),
                static_cast<unsigned long long>(
                    r.replayStats.keyEventsInjected),
                static_cast<unsigned long long>(
                    r.replayStats.serialBytesInjected),
                static_cast<unsigned long long>(
                    r.replayStats.keyStateOverrides),
                static_cast<unsigned long long>(
                    r.replayStats.seedsApplied));
    if (cfg.options.recover) {
        std::printf("recovery      %llu divergences, %llu rewinds, "
                    "%llu records skipped\n",
                    static_cast<unsigned long long>(
                        r.replayStats.divergencesDetected),
                    static_cast<unsigned long long>(
                        r.replayStats.recoveryRewinds),
                    static_cast<unsigned long long>(
                        r.replayStats.recordsSkipped));
    }
    return 0;
}

int
cmdFsck(const Args &a)
{
    const char *target = a.operand();
    if (!target) {
        std::fprintf(stderr,
                     "fsck: missing FILE or session BASE operand\n");
        return 2;
    }

    // A direct file path is checked alone; otherwise the operand is a
    // session base naming the usual three artifacts.
    std::vector<std::string> paths;
    if (std::FILE *f = std::fopen(target, "rb")) {
        std::fclose(f);
        paths.push_back(target);
    } else {
        std::string base = target;
        paths = {base + ".init.snap", base + ".log",
                 base + ".final.snap"};
    }

    bool allClean = true;
    for (const auto &p : paths) {
        validate::FsckReport rep = validate::fsckArtifact(p);
        std::printf("%s\n", rep.summary.c_str());
        allClean = allClean && rep.clean();
    }
    return allClean ? 0 : 1;
}

int
cmdValidate(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    core::ReplayConfig cfg;
    cfg.logicalImportMode = a.has("--import");
    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);

    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    std::printf("%s\n", logCorr.report().c_str());
    device::SnapshotBus handheld(s.finalState);
    device::SnapshotBus emulated(r.finalState);
    auto stateCorr = validate::correlateStates(
        os::listDatabases(handheld), os::listDatabases(emulated));
    std::printf("%s\n", stateCorr.report().c_str());
    return logCorr.pass() && stateCorr.pass() ? 0 : 1;
}

/** Cache sweep sink. */
class SweepSink : public device::MemRefSink
{
  public:
    explicit SweepSink(cache::CacheSweep &s)
        : sweep(s)
    {}

    void
    onRef(Addr addr, m68k::AccessKind,
          device::RefClass cls) override
    {
        if (cls == device::RefClass::Ram)
            sweep.feed(addr, false);
        else if (cls == device::RefClass::Flash)
            sweep.feed(addr, true);
    }

  private:
    cache::CacheSweep &sweep;
};

int
cmdSweep(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    cache::CacheSweep sweep(cache::CacheSweep::paper56());
    SweepSink sink(sweep);
    core::ReplayConfig cfg;
    cfg.extraRefSink = &sink;
    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);

    TextTable t("56-configuration sweep (miss rate %, T_eff cycles)");
    t.setHeader({"Config", "Miss rate", "T_eff", "vs no cache"});
    double base = r.refs.avgMemCycles();
    for (const auto &c : sweep.caches()) {
        double teff = c.stats().avgAccessTimePaper();
        t.addRow({c.config().name(),
                  TextTable::percent(c.stats().missRate(), 3),
                  TextTable::num(teff, 3),
                  TextTable::percent(1.0 - teff / base, 1)});
    }
    if (a.has("--csv"))
        std::printf("%s", t.renderCsv().c_str());
    else
        std::printf("%s\nno-cache baseline: %.3f cycles\n",
                    t.render().c_str(), base);
    return 0;
}

int
cmdDisasm(const Args &a)
{
    u32 count = static_cast<u32>(
        std::strtoul(a.value("--count", "40"), nullptr, 0));
    os::RomImage rom = os::buildRom();
    device::Device dev;
    dev.bus().loadRom(rom.bytes);
    std::printf("PilotOS ROM @ 0x%08X (boot 0x%08X, dispatcher "
                "0x%08X)\n\n",
                device::kRomBase, rom.syms.boot, rom.syms.dispatcher);
    Addr pc = rom.syms.dispatcher;
    for (u32 i = 0; i < count; ++i) {
        auto d = m68k::disassemble(dev.bus(), pc);
        std::printf("  %08X  %s\n", pc, d.text.c_str());
        pc += d.length;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    setLogQuiet(true);
    Args rest{argc - 2, argv + 2};
    std::string cmd = argv[1];
    if (cmd == "collect")
        return cmdCollect(rest);
    if (cmd == "info")
        return cmdInfo(rest);
    if (cmd == "replay")
        return cmdReplay(rest);
    if (cmd == "validate")
        return cmdValidate(rest);
    if (cmd == "fsck")
        return cmdFsck(rest);
    if (cmd == "sweep")
        return cmdSweep(rest);
    if (cmd == "disasm")
        return cmdDisasm(rest);
    return usage();
}
