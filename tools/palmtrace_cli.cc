/**
 * @file
 * The palmtrace command-line driver.
 *
 * Subcommands cover the paper's whole workflow on session artifacts
 * saved as <base>.init.snap / <base>.log / <base>.final.snap:
 *
 *   palmtrace collect --out BASE [--seed N] [--interactions N]
 *                     [--idle TICKS] [--beams]
 *       synthesize a volunteer session and save its artifacts
 *
 *   palmtrace info BASE
 *       summarize a saved session (log mix, timestamps, states)
 *
 *   palmtrace replay BASE [--import] [--jitter N] [--recover]
 *                    [--profile]
 *       replay with profiling; print reference and timing measurements
 *       (--recover turns on online divergence detection with
 *       checkpoint-rewind recovery; --profile additionally runs a
 *       two-level cache hierarchy over the reference stream and
 *       publishes per-level counters)
 *
 *   palmtrace validate BASE [--import]
 *       run the paper's two-fold validation and print both reports
 *
 *   palmtrace fsck <FILE | BASE>
 *       verify artifact integrity (frame header, checksum, and full
 *       structural parse); exit 0 when clean, 1 when corrupt
 *
 *   palmtrace stats <FILE | BASE>
 *       summarize any artifact (activity log, snapshot, checkpoint):
 *       record mix, sizes, fingerprints, tick ranges
 *
 *   palmtrace sweep BASE [--csv]
 *       the §4 case study: 56-configuration miss rates and Eq 2 times
 *
 *   palmtrace sweep --packed FILE [--in-memory] [--csv]
 *       the same case study fed from a packed PTPK trace file,
 *       streamed block by block with O(block) memory (--in-memory
 *       decodes the whole trace up front instead, for differential
 *       comparison against the streaming path)
 *
 *   palmtrace sweep --sessions [--scale X]
 *       collect and replay the four Table 1 sessions concurrently on
 *       the worker pool and print the per-session measurements
 *
 *   palmtrace trace pack IN OUT [--block N]
 *   palmtrace trace pack --synthetic N OUT [--seed S] [--block N]
 *   palmtrace trace unpack IN OUT [--format din|pttr]
 *   palmtrace trace info FILE
 *       packed-trace toolbox: convert Dinero .din or raw PTTR traces
 *       to/from the block-compressed PTPK format (pack autodetects
 *       the input format by its magic bytes; --synthetic packs the
 *       Figure 7 synthetic desktop trace instead of reading a file),
 *       and summarize/verify any trace file
 *
 *   palmtrace replay BASE --pack-out FILE
 *       additionally tee the replayed reference stream into a packed
 *       PTPK trace file (composable with --profile)
 *
 *   palmtrace disasm [--count N]
 *       disassemble the front of the PilotOS ROM (sanity/debugging)
 *
 *   palmtrace report [--metrics M.json] [--timeseries T.jsonl]
 *                    [--journal J] [--postmortem P.json] [--out FILE]
 *       join a run's observability artifacts into one markdown
 *       report (any subset of inputs; stdout when --out is omitted)
 *
 * Observability options, accepted by every subcommand:
 *
 *   --jobs N             worker threads for the parallel stages
 *                        (PT_JOBS env var sets the default; 1 forces
 *                        fully sequential execution)
 *   --metrics-out FILE   write the metrics registry as JSON on exit
 *   --trace-out FILE     record a Chrome trace-event timeline (open in
 *                        Perfetto / chrome://tracing) and write it
 *   --timeseries-out FILE
 *                        simulated-time telemetry: per-interval
 *                        cycles/instructions/refs/cache/energy rows
 *                        as JSONL (or CSV when FILE ends in .csv);
 *                        accepted by replay, sweep, and epoch run
 *   --ts-interval N      timeseries interval width (cycles; refs for
 *                        the sweep's reference-index domain)
 *   --postmortem FILE    arm the flight recorder: on the first
 *                        failure trigger (divergence, watchdog stall,
 *                        quarantine, crash hook, fatal signal) the
 *                        last moments of every thread dump to FILE
 *   --quiet / --verbose  lower / raise log verbosity (see also the
 *                        PT_LOG_LEVEL environment variable)
 *
 * Exit codes: 0 success, 1 operational failure (corrupt artifact,
 * failed validation), 2 usage error (unknown subcommand, missing
 * operand).
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/cancel.h"
#include "base/json.h"
#include "base/logging.h"
#include "base/table.h"
#include "base/threadpool.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/palmsim.h"
#include "device/checkpoint.h"
#include "epoch/epochplan.h"
#include "epoch/epochrunner.h"
#include "m68k/disasm.h"
#include "m68k/execmode.h"
#include "obs/flightrec.h"
#include "obs/profile.h"
#include "obs/ratewindow.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"
#include "serve/client.h"
#include "serve/server.h"
#include "super/jobs.h"
#include "super/journal.h"
#include "trace/dinero.h"
#include "trace/memtrace.h"
#include "trace/packedtrace.h"
#include "trace/tracediff.h"
#include "validate/artifactcheck.h"
#include "validate/correlate.h"
#include "workload/desktoptrace.h"
#include "workload/sessionrunner.h"
#include "workload/tracefeed.h"

namespace
{

using namespace pt;

/** SIGINT requests a cooperative stop: long-running loops poll this
 *  token, unwind cleanly (journal footer, metrics flush), and the
 *  process exits 130 like an interrupted shell command. */
CancelToken gSigint;

extern "C" void
onSigint(int)
{
    gSigint.requestCancel(); // async-signal-safe: one atomic store
}

/** A fatal signal's only job before re-raising: flush the flight
 *  recorder so the crash leaves a postmortem bundle behind. A no-op
 *  (beyond re-raising) when the recorder was never armed. */
extern "C" void
onFatalSignal(int sig)
{
    obs::FlightRecorder::global().dumpOnTrigger("fatal_signal");
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

/** Exit code for a run the user interrupted (128 + SIGINT). */
constexpr int kExitInterrupted = 130;

/** SIGTERM asks `palmtrace serve` to drain. The handler only sets
 *  this flag (async-signal-safe); the serving loop polls it and
 *  calls the (not signal-safe) drain machinery from normal code. */
volatile std::sig_atomic_t gSigterm = 0;

extern "C" void
onSigterm(int)
{
    gSigterm = 1;
}

/** Tiny argv scanner. */
struct Args
{
    int argc;
    char **argv;

    /** Flags that consume the following token as their value. */
    static bool
    takesValue(const char *flag)
    {
        static const char *kValueFlags[] = {
            "--out",    "--seed",        "--interactions",
            "--idle",   "--jitter",      "--count",
            "--jobs",   "--scale",
            "--metrics-out", "--trace-out",
            "--packed", "--pack-out",    "--synthetic",
            "--format", "--block",
            "--epochs", "--every-events", "--every-cycles",
            "--retries", "--deadline",    "--max-retries",
            "--journal",
            "--timeseries-out", "--ts-interval", "--postmortem",
            "--metrics", "--timeseries",
            "--exec-mode",
            "--socket", "--tcp", "--max-sessions",
            "--session-timeout", "--scratch", "--remote",
        };
        for (const char *f : kValueFlags)
            if (!std::strcmp(flag, f))
                return true;
        return false;
    }

    const char *
    value(const char *flag, const char *fallback = nullptr) const
    {
        for (int i = 0; i + 1 < argc; ++i)
            if (!std::strcmp(argv[i], flag))
                return argv[i + 1];
        return fallback;
    }

    bool
    has(const char *flag) const
    {
        for (int i = 0; i < argc; ++i)
            if (!std::strcmp(argv[i], flag))
                return true;
        return false;
    }

    /** First non-flag operand after the subcommand. */
    const char *
    operand() const
    {
        auto ops = operands();
        return ops.empty() ? nullptr : ops.front();
    }

    /** All non-flag operands, in order. */
    std::vector<const char *>
    operands() const
    {
        std::vector<const char *> out;
        for (int i = 0; i < argc; ++i) {
            if (argv[i][0] == '-') {
                if (takesValue(argv[i]))
                    ++i; // skip the flag's value
                continue;
            }
            out.push_back(argv[i]);
        }
        return out;
    }
};

const char *const kSubcommands[] = {
    "collect", "info", "replay", "validate", "fsck",  "stats",
    "sweep",   "trace", "epoch", "resume",   "disasm", "report",
    "fleet",   "serve", "submit",
};

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: palmtrace <subcommand> [options]\n"
        "\n"
        "subcommands:\n"
        "  collect --out BASE [--seed N] [--interactions N]\n"
        "          [--idle TICKS] [--beams]\n"
        "                     synthesize a session, save its artifacts\n"
        "  info BASE          summarize a saved session\n"
        "  replay BASE [--import] [--jitter N] [--recover] [--profile]\n"
        "                     replay with profiling measurements\n"
        "  validate BASE [--import]\n"
        "                     the paper's two-fold validation\n"
        "  fsck FILE|BASE     artifact integrity check (exit 0/1)\n"
        "  stats FILE|BASE    summarize any log/snapshot/checkpoint\n"
        "  sweep BASE [--csv] the 56-configuration cache case study\n"
        "  sweep --packed FILE [--in-memory] [--csv]\n"
        "                     the case study fed from a packed trace,\n"
        "                     streamed from disk (or decoded up front\n"
        "                     with --in-memory for differential runs)\n"
        "  sweep --sessions [--scale X]\n"
        "                     collect+replay the four Table 1 sessions\n"
        "                     concurrently, then print the table\n"
        "  trace pack IN OUT [--block N]\n"
        "                     convert a Dinero .din or raw PTTR trace\n"
        "                     to the packed PTPK format\n"
        "  trace pack --synthetic N OUT [--seed S]\n"
        "                     pack the Fig 7 synthetic desktop trace\n"
        "  trace unpack IN OUT [--format din|pttr]\n"
        "                     expand a packed trace (default: din)\n"
        "  trace info FILE    trace statistics (any trace format)\n"
        "  trace diff A B     compare two traces record by record\n"
        "                     (any mix of din/PTTR/PTPK); report the\n"
        "                     first divergence; exit 0 identical,\n"
        "                     1 traces differ, 2 unreadable/corrupt\n"
        "  replay BASE --epochs N --jobs J --pack-out FILE\n"
        "                     epoch-parallel profiled replay: scan,\n"
        "                     fan the epochs over the worker pool,\n"
        "                     stitch a bit-identical packed trace\n"
        "  epoch plan BASE --out PLAN [--epochs N |\n"
        "             --every-events K | --every-cycles C]\n"
        "                     scan a session into an epoch plan\n"
        "  epoch run BASE PLAN --out FILE [--keep-shards]\n"
        "            [--retries R] [--block N]\n"
        "                     profile a plan's epochs on all cores\n"
        "  epoch info PLAN    summarize an epoch plan\n"
        "  resume JOURNAL [--jobs N]\n"
        "                     resume a journalled job after a crash,\n"
        "                     kill, or Ctrl-C: skips finished items,\n"
        "                     re-runs the rest, finalizes the same\n"
        "                     output an uninterrupted run writes\n"
        "  fleet --out BASE [--count N] [--scale X] [--seed S]\n"
        "        [--block N] [--save-sessions]\n"
        "                     instantiate a fleet of N devices (shared\n"
        "                     ROM, copy-on-write RAM), collect+replay a\n"
        "                     session on each, stream one packed trace\n"
        "                     per session to BASE-session-<i>.ptpk and\n"
        "                     a summary CSV to BASE.csv; traces are\n"
        "                     byte-identical at any --jobs count\n"
        "  serve --socket PATH [--tcp PORT] [--jobs N]\n"
        "        [--max-sessions M] [--session-timeout MS]\n"
        "        [--scratch DIR]\n"
        "                     resident fleet server: accepts session\n"
        "                     jobs over the PTSF socket protocol,\n"
        "                     streams back packed traces and metrics;\n"
        "                     SIGTERM (or a client shutdown frame)\n"
        "                     drains in-flight sessions, then exits\n"
        "  submit --socket PATH --out BASE [--count N] [--scale X]\n"
        "         [--seed S] [--block N] [--journal FILE]\n"
        "                     run a fleet through a resident server;\n"
        "                     artifacts are byte-identical to a local\n"
        "                     'palmtrace fleet' of the same specs\n"
        "                     (--tcp PORT instead of --socket talks\n"
        "                     to a TCP-loopback server)\n"
        "  fleet --remote PATH ...\n"
        "                     same as submit --socket PATH\n"
        "  disasm [--count N] disassemble the PilotOS ROM\n"
        "  report [--metrics M.json] [--timeseries T.jsonl]\n"
        "         [--journal J] [--postmortem P.json] [--out FILE]\n"
        "                     join a run's observability artifacts\n"
        "                     into one markdown run report\n"
        "  help               print this message\n"
        "\n"
        "supervised-job options (epoch run, sweep --packed, fleet):\n"
        "  --journal FILE       write-ahead job journal; enables\n"
        "                       'palmtrace resume FILE'\n"
        "  --deadline MS        per-item stall deadline enforced by\n"
        "                       the watchdog (0 = off)\n"
        "  --max-retries N      attempts per item before quarantine\n"
        "\n"
        "observability options (any subcommand):\n"
        "  --jobs N             worker threads for parallel stages\n"
        "                       (also: PT_JOBS; 1 forces sequential)\n"
        "  --exec-mode MODE     m68k engine: interp | translate\n"
        "                       (also: PT_EXEC_MODE; both engines are\n"
        "                       bit-identical, translate is faster)\n"
        "  --metrics-out FILE   write the metrics registry as JSON\n"
        "  --trace-out FILE     write a Chrome/Perfetto trace timeline\n"
        "  --timeseries-out FILE\n"
        "                       simulated-time telemetry (JSONL, or\n"
        "                       CSV when FILE ends in .csv); replay,\n"
        "                       sweep, and epoch run\n"
        "  --ts-interval N      timeseries interval width in cycles\n"
        "                       (refs for the sweep domain)\n"
        "  --postmortem FILE    arm the flight recorder; failure\n"
        "                       triggers dump the bundle to FILE\n"
        "  --quiet | --verbose  log verbosity (also: PT_LOG_LEVEL=\n"
        "                       quiet|warn|info|debug)\n");
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

/** Levenshtein distance, for the unknown-subcommand hint. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t cur = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               prev + (a[i - 1] != b[j - 1])});
            prev = cur;
        }
    }
    return row[b.size()];
}

int
unknownSubcommand(const std::string &cmd)
{
    std::fprintf(stderr, "palmtrace: unknown subcommand '%s'\n",
                 cmd.c_str());
    const char *best = nullptr;
    std::size_t bestDist = 3; // suggest within distance 2 only
    for (const char *s : kSubcommands) {
        std::size_t d = editDistance(cmd, s);
        if (d < bestDist) {
            bestDist = d;
            best = s;
        }
    }
    if (best)
        std::fprintf(stderr, "did you mean '%s'?\n", best);
    std::fprintf(stderr, "run 'palmtrace help' for the full list\n");
    return 2;
}

// ---------------------------------------------------------------------
// Observability plumbing shared by the subcommands.

/** Wall-clock heartbeat printer for long replays. Reports progress
 *  in emulated cycles — the quantity replay wall time is actually
 *  proportional to — with a cycle-rate ETA, and tags the owning
 *  epoch when epoch-parallel workers report concurrently. Rates and
 *  the ETA come from a sliding window over recent reports (one
 *  window per reporting epoch), not the run-lifetime average, so
 *  they converge on the current pace instead of being dragged by a
 *  slow warm-up or an early fast phase. */
class Heartbeat
{
  public:
    void
    install(replay::ReplayOptions &opts, u64 everyEvents = 250)
    {
        start = std::chrono::steady_clock::now();
        opts.progressEveryEvents = everyEvents;
        opts.progress = handler();
    }

    /** The progress callback itself, for non-ReplayOptions surfaces
     *  (the epoch runner's RunOptions). */
    std::function<void(const replay::ReplayProgress &)>
    handler()
    {
        start = std::chrono::steady_clock::now();
        return [this](const replay::ReplayProgress &p) { report(p); };
    }

  private:
    void
    report(const replay::ReplayProgress &p)
    {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        if (secs <= 0.0)
            return;
        // Concurrent epoch workers share one heartbeat; serialize the
        // lines so they never interleave mid-record. Each epoch's
        // positions advance independently, so each gets its own
        // rate windows.
        std::lock_guard<std::mutex> lock(mutex);
        Windows &w = windows[p.epochId];
        w.events.add(secs, static_cast<double>(p.eventsDelivered));
        w.cycles.add(secs, static_cast<double>(p.cycles));
        double evRate = w.events.rate();
        double cycRate = w.cycles.rate();
        // The replay ends around the last scheduled event (plus a
        // short settle), so the final emulated-cycle position is
        // known up front — unlike wall time, which depends on host
        // load, this ETA is derived from emulated progress.
        u64 finalCycles = p.finalTick * kCyclesPerTick;
        double eta = std::max(
            0.0, w.cycles.etaSeconds(static_cast<double>(finalCycles)));
        char tag[24] = "";
        if (p.epochId >= 0)
            std::snprintf(tag, sizeof(tag), " [epoch %d]", p.epochId);
        std::fprintf(
            stderr,
            "progress%s: %llu/%llu events, cycle %.1fM/%.1fM "
            "(%.0f events/s, %.2fM cyc/s, ETA %.1fs)\n",
            tag, static_cast<unsigned long long>(p.eventsDelivered),
            static_cast<unsigned long long>(p.totalEvents),
            static_cast<double>(p.cycles) / 1e6,
            static_cast<double>(finalCycles) / 1e6, evRate,
            cycRate / 1e6, eta);
    }

    struct Windows
    {
        obs::RateWindow events;
        obs::RateWindow cycles;
    };

    std::chrono::steady_clock::time_point start;
    std::mutex mutex;
    std::map<int, Windows> windows; ///< keyed by epochId (-1 = whole)
};

/** Publishes one simulated cache level into the registry. */
void
publishCacheLevel(const char *level, const cache::CacheStats &st)
{
    auto &reg = obs::Registry::global();
    std::string p = std::string("cache.") + level + ".";
    reg.counter(p + "accesses").inc(st.accesses);
    reg.counter(p + "hits").inc(st.accesses - st.misses);
    reg.counter(p + "misses").inc(st.misses);
    reg.counter(p + "evictions").inc(st.evictions);
    reg.gauge(p + "miss_rate").set(st.missRate());
}

/** Feeds the replayed reference stream into a two-level hierarchy. */
class HierarchySink : public device::MemRefSink
{
  public:
    explicit HierarchySink(cache::TwoLevelCache &h)
        : hier(h)
    {}

    void
    onRef(Addr addr, m68k::AccessKind,
          device::RefClass cls) override
    {
        if (cls == device::RefClass::Ram)
            hier.access(addr, false);
        else if (cls == device::RefClass::Flash)
            hier.access(addr, true);
    }

  private:
    cache::TwoLevelCache &hier;
};

/** The representative profiling hierarchy: the paper's sweet-spot L1
 *  (8 KB, 32 B lines, 4-way) over a unified 64 KB L2. */
cache::TwoLevelCache
profileHierarchy()
{
    cache::CacheConfig l1;
    l1.sizeBytes = 8 * 1024;
    l1.lineBytes = 32;
    l1.assoc = 4;
    cache::CacheConfig l2;
    l2.sizeBytes = 64 * 1024;
    l2.lineBytes = 32;
    l2.assoc = 8;
    return cache::TwoLevelCache(l1, l2);
}

// ---------------------------------------------------------------------
// Simulated-time telemetry plumbing shared by replay/sweep/epoch.

/** Parses --ts-interval. @return 0 on a bad value (caller reports). */
u64
tsIntervalArg(const Args &a)
{
    const char *arg = a.value("--ts-interval");
    if (!arg)
        return obs::Timeseries::kDefaultIntervalCycles;
    return std::strtoull(arg, nullptr, 0);
}

bool
writeTimeseries(const obs::Timeseries &ts, const char *path,
                const char *what)
{
    std::string err;
    if (!ts.writeFile(path, &err)) {
        std::fprintf(stderr, "%s: timeseries: %s\n", what,
                     err.c_str());
        return false;
    }
    std::fprintf(stderr, "timeseries written to %s (%zu intervals)\n",
                 path, ts.rows().size());
    return true;
}

/**
 * Fills an epoch-merged series' cache columns from the stitched
 * trace. The stitched PTPK stream is byte-identical to what a
 * sequential profiled replay emits, and the merged per-interval
 * ram+flash counts partition that stream exactly as the sequential
 * run's per-ref cycle attribution did — so streaming the records
 * through an identically-configured hierarchy, switching intervals
 * at the partition boundaries, reproduces the sequential inline
 * cache columns (DESIGN.md §14).
 */
bool
addStitchedCacheColumns(obs::Timeseries &ts, const char *tracePath,
                        const char *what)
{
    cache::TwoLevelCache hier = profileHierarchy();
    trace::PackedTraceReader reader;
    if (auto r = reader.open(tracePath); !r) {
        std::fprintf(stderr, "%s: timeseries: %s: %s\n", what,
                     tracePath, r.message().c_str());
        return false;
    }
    std::vector<trace::TraceRecord> block;
    std::size_t pos = 0;
    auto next = [&](trace::TraceRecord &rec) -> bool {
        while (pos >= block.size()) {
            if (!reader.nextBlock(block))
                return false;
            pos = 0;
        }
        rec = block[pos++];
        return true;
    };

    // Snapshot the partition first: addCacheAt touches the rows the
    // counts came from.
    std::vector<std::pair<u64, u64>> partition;
    for (const auto &[idx, row] : ts.rows())
        partition.emplace_back(idx, row.ramRefs + row.flashRefs);

    for (const auto &[idx, refs] : partition) {
        u64 l1h = 0, l1m = 0, l2h = 0, l2m = 0;
        for (u64 i = 0; i < refs; ++i) {
            trace::TraceRecord rec;
            if (!next(rec)) {
                std::fprintf(stderr,
                             "%s: timeseries: stitched trace ends "
                             "before the series' reference count\n",
                             what);
                return false;
            }
            const bool isFlash = rec.cls == 1;
            if (hier.l1().access(rec.addr, isFlash)) {
                ++l1h;
            } else {
                ++l1m;
                if (hier.l2().access(rec.addr, isFlash))
                    ++l2h;
                else
                    ++l2m;
            }
        }
        ts.addCacheAt(idx, l1h, l1m, l2h, l2m);
    }
    if (auto &r = reader.status(); !r) {
        std::fprintf(stderr, "%s: timeseries: %s: %s\n", what,
                     tracePath, r.message().c_str());
        return false;
    }
    trace::TraceRecord rec;
    if (next(rec)) {
        std::fprintf(stderr,
                     "%s: timeseries: stitched trace holds more "
                     "references than the series counted\n",
                     what);
        return false;
    }
    return true;
}

/** Feeds Ram/Flash references into a reference-domain series (the
 *  sweep's telemetry: mix and energy per fixed count of refs). */
class RefsTsSink final : public device::MemRefSink
{
  public:
    explicit RefsTsSink(obs::Timeseries &ts)
        : ts(ts)
    {}

    void
    onRef(Addr, m68k::AccessKind kind, device::RefClass cls) override
    {
        if (cls != device::RefClass::Ram &&
            cls != device::RefClass::Flash)
            return;
        const obs::TsRef k =
            kind == m68k::AccessKind::Fetch ? obs::TsRef::Ifetch
            : kind == m68k::AccessKind::Write ? obs::TsRef::Dwrite
                                              : obs::TsRef::Dread;
        ts.addRef(0, k, cls == device::RefClass::Flash);
    }

  private:
    obs::Timeseries &ts;
};

/** Streams a packed trace into a reference-domain series (the packed
 *  sweep's telemetry pass — every sweep shard consumed the identical
 *  stream, so one pass serves all 56 configurations). */
bool
packedTraceToRefSeries(const char *path, obs::Timeseries &ts,
                       const char *what)
{
    trace::PackedTraceReader reader;
    if (auto r = reader.open(path); !r) {
        std::fprintf(stderr, "%s: timeseries: %s: %s\n", what, path,
                     r.message().c_str());
        return false;
    }
    std::vector<trace::TraceRecord> block;
    while (reader.nextBlock(block)) {
        for (const auto &rec : block) {
            const obs::TsRef k = rec.kind == 0 ? obs::TsRef::Ifetch
                                 : rec.kind == 2
                                     ? obs::TsRef::Dwrite
                                     : obs::TsRef::Dread;
            ts.addRef(0, k, rec.cls == 1);
        }
    }
    if (auto &r = reader.status(); !r) {
        std::fprintf(stderr, "%s: timeseries: %s: %s\n", what, path,
                     r.message().c_str());
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------

u32 blockCapacityArg(const Args &a); // defined with the trace toolbox

// Supervised-job plumbing, defined with the epoch/resume commands.
super::JobOptions jobOptionsFrom(const Args &a);
int reportJob(const char *what, const super::JobResult &r);

int
cmdCollect(const Args &a)
{
    const char *out = a.value("--out");
    if (!out) {
        std::fprintf(stderr, "collect: --out BASE is required\n");
        return 2;
    }
    workload::UserModelConfig cfg;
    cfg.seed = std::strtoull(a.value("--seed", "1"), nullptr, 0);
    cfg.interactions = static_cast<u32>(
        std::strtoul(a.value("--interactions", "12"), nullptr, 0));
    cfg.meanIdleTicks = static_cast<Ticks>(
        std::strtoul(a.value("--idle", "30000"), nullptr, 0));
    if (a.has("--beams"))
        cfg.beamWeight = 0.2;

    core::PalmSimulator sim;
    sim.beginCollection();
    auto stats = sim.runUser(cfg);
    core::Session s = sim.endCollection();
    std::string err;
    if (!s.save(out, &err)) {
        std::fprintf(stderr, "collect: %s\n", err.c_str());
        return 1;
    }
    std::printf("session saved to %s.{init.snap,log,final.snap}\n",
                out);
    std::printf("%zu log records; user did %u strokes, %u taps, "
                "%u switches, %u scrolls, %u beams over %.1f min\n",
                s.log.records.size(), stats.strokes, stats.taps,
                stats.appSwitches, stats.scrollHolds, stats.beams,
                static_cast<double>(stats.elapsedTicks) / 6000.0);
    return 0;
}

bool
loadSession(const Args &a, core::Session &s)
{
    const char *base = a.operand();
    if (!base) {
        std::fprintf(stderr, "missing session BASE operand\n");
        return false;
    }
    if (auto res = core::Session::load(base, s); !res) {
        std::fprintf(stderr, "cannot load session '%s': %s\n", base,
                     res.message().c_str());
        return false;
    }
    return true;
}

int
cmdInfo(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    TextTable t("Session summary");
    t.setHeader({"Quantity", "Value"});
    t.addRow({"log records", std::to_string(s.log.records.size())});
    t.addRow({"pen points",
              std::to_string(s.log.countOf(hacks::LogType::PenPoint))});
    t.addRow({"key events",
              std::to_string(s.log.countOf(hacks::LogType::Key))});
    t.addRow({"key-state polls",
              std::to_string(s.log.countOf(hacks::LogType::KeyState))});
    t.addRow({"notifies",
              std::to_string(s.log.countOf(hacks::LogType::Notify))});
    t.addRow({"random calls",
              std::to_string(s.log.countOf(hacks::LogType::Random))});
    t.addRow({"serial bytes",
              std::to_string(s.log.countOf(hacks::LogType::Serial))});
    if (!s.log.records.empty()) {
        t.addRow({"first tick",
                  std::to_string(s.log.records.front().tick)});
        t.addRow({"last tick",
                  std::to_string(s.log.records.back().tick)});
        t.addRow({"elapsed",
                  TextTable::hms(s.log.records.back().tick /
                                 kTicksPerSecond)});
    }
    device::SnapshotBus bus(s.finalState);
    t.addRow({"databases (final)",
              std::to_string(os::listDatabases(bus).size())});
    std::printf("%s", t.render().c_str());
    return 0;
}

/** Formats a fingerprint for display. */
std::string
fpHex(u64 fp)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

/** Prints the profile pass's per-epoch table and totals. */
void
printEpochRun(const epoch::RunResult &run, const char *out)
{
    TextTable t("Epoch-parallel profile pass");
    t.setHeader({"Epoch", "Events", "Refs", "Instructions", "Seconds",
                 "Retries", "Handoff"});
    for (const auto &e : run.epochs) {
        t.addRow({std::to_string(e.epoch), std::to_string(e.events),
                  std::to_string(e.refs),
                  std::to_string(e.instructions),
                  TextTable::num(e.seconds, 2),
                  std::to_string(e.retries),
                  e.verified ? "verified" : "DIVERGED"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("stitched trace %s (%llu refs, %llu bytes); "
                "profile %.2fs + stitch %.2fs\n",
                out, static_cast<unsigned long long>(run.refs),
                static_cast<unsigned long long>(run.bytesWritten),
                run.profileSeconds, run.stitchSeconds);
    for (const auto &d : run.divergences) {
        std::fprintf(stderr,
                     "epoch %llu DIVERGED after %u retries: expected "
                     "fingerprint %s, got %s (degraded: shard kept)\n",
                     static_cast<unsigned long long>(d.epoch),
                     d.retries, fpHex(d.expected).c_str(),
                     fpHex(d.actual).c_str());
    }
}

/** `replay --epochs N --pack-out FILE`: the one-shot epoch-parallel
 *  pipeline — scan this session into N epochs, profile them on the
 *  worker pool, stitch the shards into one packed trace. */
int
cmdReplayEpochs(const Args &a, const core::Session &s)
{
    if (a.has("--import") || a.has("--recover") ||
        a.value("--jitter")) {
        std::fprintf(stderr,
                     "replay: --epochs cannot be combined with "
                     "--import, --jitter, or --recover (epoch replay "
                     "reproduces the exact bit-identical timeline)\n");
        return 2;
    }
    const char *packOut = a.value("--pack-out");
    if (!packOut) {
        std::fprintf(stderr, "replay: --epochs needs --pack-out FILE "
                             "(the stitched trace destination)\n");
        return 2;
    }
    u32 cap = blockCapacityArg(a);
    if (!cap) {
        std::fprintf(stderr, "replay: --block must be in [1, %u]\n",
                     trace::kPackedMaxBlockCapacity);
        return 2;
    }

    epoch::ScanOptions so;
    so.epochs = std::strtoull(a.value("--epochs", "0"), nullptr, 0);
    epoch::ScanResult scan = epoch::scanSession(s, so);
    if (!scan.ok) {
        std::fprintf(stderr, "replay: %s\n", scan.error.c_str());
        return 1;
    }
    std::printf("scan pass     %.2fs, %llu epochs over %llu events\n",
                scan.seconds,
                static_cast<unsigned long long>(scan.plan.epochCount()),
                static_cast<unsigned long long>(scan.plan.totalEvents));

    epoch::RunOptions ro;
    ro.blockCapacity = cap;
    ro.maxRetries = static_cast<u32>(
        std::strtoul(a.value("--retries", "2"), nullptr, 0));
    ro.keepShards = a.has("--keep-shards");
    ro.cancel = &gSigint;
    const char *tsOut = a.value("--timeseries-out");
    std::unique_ptr<obs::Timeseries> ts;
    if (tsOut) {
        u64 w = tsIntervalArg(a);
        if (!w) {
            std::fprintf(stderr,
                         "replay: --ts-interval must be positive\n");
            return 2;
        }
        ts = std::make_unique<obs::Timeseries>(w);
        ro.timeseries = ts.get();
    }
    Heartbeat hb;
    if (!a.has("--quiet")) {
        ro.progress = hb.handler();
        ro.progressEveryEvents = 250;
    }
    epoch::RunResult run = epoch::runEpochs(s, scan.plan, packOut, ro);
    if (!run.ok) {
        std::fprintf(stderr, "replay: %s\n", run.error.c_str());
        return run.interrupted ? kExitInterrupted : 1;
    }
    printEpochRun(run, packOut);
    if (ts) {
        if (!addStitchedCacheColumns(*ts, packOut, "replay") ||
            !writeTimeseries(*ts, tsOut, "replay"))
            return 1;
    }

    if (a.has("--profile")) {
        // Profiling from the stitched stream: byte-identical to the
        // sequential replay's, so the hierarchy counters match too.
        cache::TwoLevelCache hier = profileHierarchy();
        trace::PackedTraceReader reader;
        if (auto r = reader.open(packOut); !r) {
            std::fprintf(stderr, "replay: %s: %s\n", packOut,
                         r.message().c_str());
            return 1;
        }
        std::vector<trace::TraceRecord> block;
        while (reader.nextBlock(block)) {
            for (const auto &rec : block)
                hier.access(rec.addr, rec.cls == 1);
        }
        if (auto &r = reader.status(); !r) {
            std::fprintf(stderr, "replay: %s: %s\n", packOut,
                         r.message().c_str());
            return 1;
        }
        publishCacheLevel("l1", hier.l1().stats());
        publishCacheLevel("l2", hier.l2().stats());
        std::printf("cache L1      %.3f%% miss (%s), L2 %.3f%% miss "
                    "(%s); T_eff %.3f cycles\n",
                    hier.l1().stats().missRate() * 100.0,
                    hier.l1().config().name().c_str(),
                    hier.l2().stats().missRate() * 100.0,
                    hier.l2().config().name().c_str(),
                    hier.avgAccessTime());
    }
    return run.divergences.empty() ? 0 : 1;
}

int
cmdReplay(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    if (a.value("--epochs"))
        return cmdReplayEpochs(a, s);
    core::ReplayConfig cfg;
    cfg.logicalImportMode = a.has("--import");
    cfg.options.burstJitterTicks = static_cast<Ticks>(
        std::strtoul(a.value("--jitter", "0"), nullptr, 0));
    cfg.options.recover = a.has("--recover");

    // Profiling mode: run the reference stream through a representative
    // two-level hierarchy so per-level counters land in the registry.
    bool profile = a.has("--profile");
    cache::TwoLevelCache hier = profileHierarchy();
    HierarchySink hierSink(hier);

    // --pack-out tees the replayed reference stream into a packed
    // PTPK trace file; composable with --profile through a TeeSink.
    const char *packOut = a.value("--pack-out");
    std::unique_ptr<trace::PackedTraceWriter> packWriter;
    std::unique_ptr<trace::PackedWriterSink> packSink;
    trace::TeeSink tee;
    if (profile)
        tee.add(&hierSink);
    if (packOut) {
        packWriter = std::make_unique<trace::PackedTraceWriter>(packOut);
        if (!packWriter->ok()) {
            std::fprintf(stderr,
                         "replay: cannot open '%s' for writing\n",
                         packOut);
            return 1;
        }
        packSink = std::make_unique<trace::PackedWriterSink>(*packWriter);
        tee.add(packSink.get());
    }
    if (profile || packOut)
        cfg.extraRefSink = &tee;

    // Simulated-time telemetry: the replay engine observes CPU
    // progress at its event-meter points and the core attributes
    // each reference (and its cache outcome, via a dedicated
    // hierarchy identical to the epoch post-stitch pass's) to the
    // interval holding its cycle.
    const char *tsOut = a.value("--timeseries-out");
    std::unique_ptr<obs::Timeseries> ts;
    cache::TwoLevelCache tsHier = profileHierarchy();
    if (tsOut) {
        u64 w = tsIntervalArg(a);
        if (!w) {
            std::fprintf(stderr,
                         "replay: --ts-interval must be positive\n");
            return 2;
        }
        ts = std::make_unique<obs::Timeseries>(w);
        cfg.timeseries = ts.get();
        cfg.tsHierarchy = &tsHier;
    }

    Heartbeat hb;
    if (!a.has("--quiet"))
        hb.install(cfg.options);
    cfg.options.cancel = &gSigint;

    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);
    if (r.replayStats.optionsRejected) {
        std::fprintf(stderr, "replay: %s\n",
                     r.replayStats.optionsError.c_str());
        return 2;
    }
    if (r.replayStats.interrupted) {
        // A partial trace must not look complete: abort drops the
        // temporary instead of renaming it into place.
        if (packWriter)
            packWriter->abort();
        std::fprintf(stderr, "replay: interrupted\n");
        return kExitInterrupted;
    }
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles        %llu (%.2f s guest time)\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / kCpuHz);
    std::printf("RAM refs      %llu\n",
                static_cast<unsigned long long>(r.refs.ramRefs()));
    std::printf("flash refs    %llu (%.1f%%)\n",
                static_cast<unsigned long long>(r.refs.flashRefs()),
                r.refs.flashFraction() * 100.0);
    std::printf("T_eff (Eq 3)  %.3f cycles (no cache)\n",
                r.refs.avgMemCycles());
    std::printf("events        %llu pen, %llu key, %llu serial; "
                "%llu key-state overrides, %llu seeds\n",
                static_cast<unsigned long long>(
                    r.replayStats.penEventsInjected),
                static_cast<unsigned long long>(
                    r.replayStats.keyEventsInjected),
                static_cast<unsigned long long>(
                    r.replayStats.serialBytesInjected),
                static_cast<unsigned long long>(
                    r.replayStats.keyStateOverrides),
                static_cast<unsigned long long>(
                    r.replayStats.seedsApplied));
    if (cfg.options.recover) {
        std::printf("recovery      %llu divergences, %llu rewinds, "
                    "%llu records skipped\n",
                    static_cast<unsigned long long>(
                        r.replayStats.divergencesDetected),
                    static_cast<unsigned long long>(
                        r.replayStats.recoveryRewinds),
                    static_cast<unsigned long long>(
                        r.replayStats.recordsSkipped));
    }
    if (packWriter) {
        std::string err;
        if (!packWriter->close(&err)) {
            std::fprintf(stderr, "replay: pack-out: %s\n", err.c_str());
            return 1;
        }
        double perRef =
            packWriter->count()
                ? static_cast<double>(packWriter->bytesWritten()) /
                      static_cast<double>(packWriter->count())
                : 0.0;
        std::printf("packed trace  %s (%llu refs, %llu bytes, "
                    "%.2f B/ref)\n",
                    packOut,
                    static_cast<unsigned long long>(packWriter->count()),
                    static_cast<unsigned long long>(
                        packWriter->bytesWritten()),
                    perRef);
    }
    if (profile) {
        publishCacheLevel("l1", hier.l1().stats());
        publishCacheLevel("l2", hier.l2().stats());
        std::printf("cache L1      %.3f%% miss (%s), L2 %.3f%% miss "
                    "(%s); T_eff %.3f cycles\n",
                    hier.l1().stats().missRate() * 100.0,
                    hier.l1().config().name().c_str(),
                    hier.l2().stats().missRate() * 100.0,
                    hier.l2().config().name().c_str(),
                    hier.avgAccessTime());
    }
    if (ts && !writeTimeseries(*ts, tsOut, "replay"))
        return 1;
    return 0;
}

std::vector<std::string>
resolveArtifactPaths(const char *target)
{
    // A direct file path is checked alone; otherwise the operand is a
    // session base naming the usual three artifacts.
    std::vector<std::string> paths;
    if (std::FILE *f = std::fopen(target, "rb")) {
        std::fclose(f);
        paths.push_back(target);
    } else {
        std::string base = target;
        paths = {base + ".init.snap", base + ".log",
                 base + ".final.snap"};
    }
    return paths;
}

int
cmdFsck(const Args &a)
{
    const char *target = a.operand();
    if (!target) {
        std::fprintf(stderr,
                     "fsck: missing FILE or session BASE operand\n");
        return 2;
    }
    bool allClean = true;
    for (const auto &p : resolveArtifactPaths(target)) {
        validate::FsckReport rep = validate::fsckArtifact(p);
        std::printf("%s\n", rep.summary.c_str());
        allClean = allClean && rep.clean();
        // Stale-temp hygiene: a crashed atomic write strands
        // "<path>.tmp". Report the litter (informational — the
        // artifact itself decides the exit code); journalled resumes
        // clean the temporaries they own.
        std::string tmp = p + ".tmp";
        if (std::FILE *f = std::fopen(tmp.c_str(), "rb")) {
            std::fclose(f);
            std::printf("%s: stale temporary from an interrupted "
                        "atomic write (safe to delete)\n",
                        tmp.c_str());
        }
    }
    return allClean ? 0 : 1;
}

/** Per-kind artifact summaries for `palmtrace stats`. */
void
statsForLog(const std::string &path, TextTable &t)
{
    trace::ActivityLog log;
    if (auto res = trace::ActivityLog::load(path, log); !res)
        return;
    auto row = [&](const char *what, u64 v) {
        t.addRow({path, what, std::to_string(v)});
    };
    row("records", log.records.size());
    row("pen points", log.countOf(hacks::LogType::PenPoint));
    row("key events", log.countOf(hacks::LogType::Key));
    row("key-state polls", log.countOf(hacks::LogType::KeyState));
    row("notifies", log.countOf(hacks::LogType::Notify));
    row("random calls", log.countOf(hacks::LogType::Random));
    row("serial bytes", log.countOf(hacks::LogType::Serial));
    if (!log.records.empty()) {
        row("first tick", log.records.front().tick);
        row("last tick", log.records.back().tick);
        t.addRow({path, "elapsed",
                  TextTable::hms(log.records.back().tick /
                                 kTicksPerSecond)});
    }
    auto &reg = obs::Registry::global();
    reg.counter("artifact.logs_summarized").inc();
    reg.counter("artifact.log_records").inc(log.records.size());
}

void
statsForSnapshot(const std::string &path, TextTable &t)
{
    device::Snapshot snap;
    if (auto res = device::Snapshot::load(path, snap); !res)
        return;
    u64 nonZero = 0;
    for (u8 b : snap.ram)
        nonZero += b != 0;
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(snap.fingerprint()));
    t.addRow({path, "RAM bytes", std::to_string(snap.ram.size())});
    t.addRow({path, "RAM bytes nonzero", std::to_string(nonZero)});
    t.addRow({path, "ROM bytes", std::to_string(snap.rom.size())});
    t.addRow({path, "RTC base", std::to_string(snap.rtcBase)});
    t.addRow({path, "fingerprint", fp});
    obs::Registry::global().counter("artifact.snapshots_summarized")
        .inc();
}

void
statsForCheckpoint(const std::string &path, TextTable &t)
{
    device::Checkpoint cp;
    if (auto res = device::Checkpoint::load(path, cp); !res)
        return;
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(cp.fingerprint()));
    char pc[16];
    std::snprintf(pc, sizeof(pc), "0x%08X", cp.cpu.pc);
    t.addRow({path, "cycles", std::to_string(cp.cycleCount)});
    t.addRow({path, "ticks",
              std::to_string(cp.cycleCount / kCyclesPerTick)});
    t.addRow({path, "instructions",
              std::to_string(cp.cpu.instructions)});
    t.addRow({path, "PC", pc});
    t.addRow({path, "stopped", cp.cpu.stopped ? "yes" : "no"});
    t.addRow({path, "fingerprint", fp});
    obs::Registry::global()
        .counter("artifact.checkpoints_summarized")
        .inc();
}

void
statsForEpochPlan(const std::string &path, TextTable &t)
{
    epoch::EpochPlan plan;
    if (auto res = epoch::EpochPlan::load(path, plan); !res)
        return;
    t.addRow({path, "epochs", std::to_string(plan.epochCount())});
    t.addRow({path, "total events",
              std::to_string(plan.totalEvents)});
    t.addRow({path, "settle ticks",
              std::to_string(plan.settleTicks)});
    obs::Registry::global()
        .counter("artifact.epoch_plans_summarized")
        .inc();
}

bool
readFileText(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char buf[1 << 16];
    for (;;) {
        std::size_t n = std::fread(buf, 1, sizeof(buf), f);
        out.append(buf, n);
        if (n < sizeof(buf))
            break;
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** The JSON telemetry artifacts carry their schema tag up front;
 *  peeking at the head routes them to the right summarizer. */
std::string
sniffJsonSchema(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return {};
    char buf[128];
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const std::string head(buf);
    if (head.find("palmtrace-timeseries-v1") != std::string::npos)
        return "timeseries";
    if (head.find("palmtrace-flightrec-v1") != std::string::npos)
        return "flightrec";
    return {};
}

/** Interpolated percentile over an unsorted sample (exact, unlike
 *  the registry histogram's bucket interpolation). */
double
samplePercentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    if (p <= 0.0)
        return v.front();
    if (p >= 1.0)
        return v.back();
    const double t = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(t);
    const double frac = t - static_cast<double>(lo);
    if (lo + 1 >= v.size())
        return v.back();
    return v[lo] + (v[lo + 1] - v[lo]) * frac;
}

/** Aggregates over a timeseries JSONL file, shared by `stats` and
 *  `report`. */
struct TsSummary
{
    bool ok = false;
    std::string error;
    std::string domain;
    u64 interval = 0;
    u64 intervals = 0;
    u64 instructions = 0, cycles = 0, ram = 0, flash = 0, events = 0;
    u64 l1h = 0, l1m = 0, l2h = 0, l2m = 0;
    double energy = 0.0;
    std::vector<double> ipc; ///< per-interval, cycle intervals only
};

TsSummary
summarizeTimeseries(const char *path)
{
    TsSummary s;
    std::string text;
    if (!readFileText(path, text)) {
        s.error = std::string("cannot read '") + path + "'";
        return s;
    }
    std::size_t pos = 0;
    json::JsonValue header;
    if (auto r = json::parseOne(text, pos, header); !r) {
        s.error = r.message();
        return s;
    }
    if (header.stringOr("schema", "") != "palmtrace-timeseries-v1") {
        s.error = "not a palmtrace-timeseries-v1 file";
        return s;
    }
    s.domain = header.stringOr("domain", "?");
    s.interval = header.u64Or("interval", 0);
    // parseOne stops at line ends (that is what makes it a JSONL
    // reader); the loop owns stepping over them.
    auto skipLines = [&] {
        while (pos < text.size() &&
               (text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    };
    skipLines();
    while (pos < text.size()) {
        json::JsonValue row;
        if (auto r = json::parseOne(text, pos, row); !r) {
            s.error = r.message();
            return s;
        }
        ++s.intervals;
        s.instructions += row.u64Or("instructions", 0);
        const u64 c = row.u64Or("cycles", 0);
        s.cycles += c;
        s.ram += row.u64Or("ram_refs", 0);
        s.flash += row.u64Or("flash_refs", 0);
        s.events += row.u64Or("events", 0);
        s.l1h += row.u64Or("l1_hits", 0);
        s.l1m += row.u64Or("l1_misses", 0);
        s.l2h += row.u64Or("l2_hits", 0);
        s.l2m += row.u64Or("l2_misses", 0);
        s.energy += row.numberOr("energy_mj", 0.0);
        if (c > 0)
            s.ipc.push_back(row.numberOr("ipc", 0.0));
        skipLines();
    }
    s.ok = true;
    return s;
}

/** `stats` on a timeseries JSONL artifact: totals plus the
 *  per-interval IPC distribution (p50/p95/p99). */
int
statsForTimeseriesFile(const char *path)
{
    TsSummary sum = summarizeTimeseries(path);
    if (!sum.ok) {
        std::fprintf(stderr, "stats: %s: %s\n", path,
                     sum.error.c_str());
        return 1;
    }
    const u64 intervals = sum.intervals;
    const u64 instructions = sum.instructions, cycles = sum.cycles;
    const u64 ram = sum.ram, flash = sum.flash, events = sum.events;
    const u64 l1h = sum.l1h, l1m = sum.l1m, l2h = sum.l2h,
              l2m = sum.l2m;
    const double energy = sum.energy;
    const std::vector<double> &ipc = sum.ipc;

    TextTable t("Timeseries summary");
    t.setHeader({"Quantity", "Value"});
    t.addRow({"domain", sum.domain});
    t.addRow({"interval width", std::to_string(sum.interval)});
    t.addRow({"intervals", std::to_string(intervals)});
    t.addRow({"instructions", std::to_string(instructions)});
    t.addRow({"cycles", std::to_string(cycles)});
    t.addRow({"RAM refs", std::to_string(ram)});
    t.addRow({"flash refs", std::to_string(flash)});
    if (ram + flash) {
        t.addRow({"flash fraction",
                  TextTable::percent(
                      static_cast<double>(flash) /
                          static_cast<double>(ram + flash),
                      2)});
    }
    if (l1h + l1m) {
        t.addRow({"L1 miss rate",
                  TextTable::percent(
                      static_cast<double>(l1m) /
                          static_cast<double>(l1h + l1m),
                      3)});
    }
    if (l2h + l2m) {
        t.addRow({"L2 miss rate",
                  TextTable::percent(
                      static_cast<double>(l2m) /
                          static_cast<double>(l2h + l2m),
                      3)});
    }
    t.addRow({"events", std::to_string(events)});
    t.addRow({"energy (mJ)", TextTable::num(energy, 3)});
    if (!ipc.empty()) {
        t.addRow({"IPC p50",
                  TextTable::num(samplePercentile(ipc, 0.50), 4)});
        t.addRow({"IPC p95",
                  TextTable::num(samplePercentile(ipc, 0.95), 4)});
        t.addRow({"IPC p99",
                  TextTable::num(samplePercentile(ipc, 0.99), 4)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

/** `stats` on a flight-recorder bundle: trigger, threads, and the
 *  per-kind entry mix. */
int
statsForFlightDumpFile(const char *path)
{
    obs::FlightDump dump;
    if (auto r = obs::loadFlightDump(path, dump); !r) {
        std::fprintf(stderr, "stats: %s: %s\n", path,
                     r.message().c_str());
        return 1;
    }
    std::map<std::string, u64> byKind;
    u64 total = 0;
    for (const auto &th : dump.threads) {
        total += th.entries.size();
        for (const auto &e : th.entries)
            ++byKind[e.kind];
    }
    TextTable t("Flight-recorder bundle");
    t.setHeader({"Quantity", "Value"});
    t.addRow({"trigger", dump.reason});
    t.addRow({"ring capacity", std::to_string(dump.capacity)});
    t.addRow({"threads", std::to_string(dump.threads.size())});
    t.addRow({"entries", std::to_string(total)});
    for (const auto &[kind, n] : byKind)
        t.addRow({"entries: " + kind, std::to_string(n)});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdStats(const Args &a)
{
    const char *target = a.operand();
    if (!target) {
        std::fprintf(stderr,
                     "stats: missing FILE or session BASE operand\n");
        return 2;
    }
    // The JSON telemetry artifacts (timeseries, flight-recorder
    // bundles) are not framed like the binary artifacts; their
    // schema tag routes them to dedicated summarizers.
    const std::string schema = sniffJsonSchema(target);
    if (schema == "timeseries")
        return statsForTimeseriesFile(target);
    if (schema == "flightrec")
        return statsForFlightDumpFile(target);
    TextTable t("Artifact statistics");
    t.setHeader({"Artifact", "Quantity", "Value"});
    bool allClean = true;
    for (const auto &p : resolveArtifactPaths(target)) {
        validate::FsckReport rep = validate::fsckArtifact(p);
        t.addRow({p, "kind", rep.kind});
        t.addRow({p, "format version", std::to_string(rep.version)});
        t.addRow({p, "size bytes", std::to_string(rep.sizeBytes)});
        t.addRow({p, "integrity",
                  rep.clean() ? (rep.checksummed
                                     ? "ok (checksum verified)"
                                     : "ok (legacy, structural)")
                              : "CORRUPT"});
        if (!rep.clean()) {
            t.addRow({p, "error", rep.result.message()});
            allClean = false;
            continue;
        }
        if (rep.kind == std::string("activity log"))
            statsForLog(p, t);
        else if (rep.kind == std::string("snapshot"))
            statsForSnapshot(p, t);
        else if (rep.kind == std::string("checkpoint"))
            statsForCheckpoint(p, t);
        else if (rep.kind == std::string("epoch plan"))
            statsForEpochPlan(p, t);
    }
    std::printf("%s", t.render().c_str());
    return allClean ? 0 : 1;
}

int
cmdValidate(const Args &a)
{
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    core::ReplayConfig cfg;
    cfg.logicalImportMode = a.has("--import");

    Heartbeat hb;
    if (!a.has("--quiet"))
        hb.install(cfg.options);

    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);

    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    std::printf("%s\n", logCorr.report().c_str());
    device::SnapshotBus handheld(s.finalState);
    device::SnapshotBus emulated(r.finalState);
    auto stateCorr = validate::correlateStates(
        os::listDatabases(handheld), os::listDatabases(emulated));
    std::printf("%s\n", stateCorr.report().c_str());

    auto &reg = obs::Registry::global();
    reg.counter(logCorr.pass() ? "validate.log_pass"
                               : "validate.log_fail")
        .inc();
    reg.counter(stateCorr.pass() ? "validate.state_pass"
                                 : "validate.state_fail")
        .inc();
    reg.gauge("validate.max_lag_ticks")
        .max(static_cast<double>(logCorr.maxTickLag));
    return logCorr.pass() && stateCorr.pass() ? 0 : 1;
}

/** Cache sweep sink. */
class SweepSink : public device::MemRefSink
{
  public:
    explicit SweepSink(cache::CacheSweep &s)
        : sweep(s)
    {}

    void
    onRef(Addr addr, m68k::AccessKind,
          device::RefClass cls) override
    {
        if (cls == device::RefClass::Ram)
            sweep.feed(addr, false);
        else if (cls == device::RefClass::Flash)
            sweep.feed(addr, true);
    }

  private:
    cache::CacheSweep &sweep;
};

/** `sweep --sessions`: the Table 1 batch, sessions fanned out over
 *  the worker pool (each is an independent collect+replay). */
int
cmdSweepSessions(const Args &a)
{
    double scale = std::atof(a.value("--scale", "1"));
    if (scale <= 0)
        scale = 1.0;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<workload::SessionRunResult> runs =
        workload::runSessionsParallel(workload::table1Specs(scale));
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    TextTable t("Table 1 sessions (parallel batch)");
    t.setHeader({"Session", "Events", "RAM refs", "Flash refs",
                 "Ave mem cyc"});
    for (const auto &run : runs) {
        t.addRow({run.name,
                  std::to_string(run.session.log.records.size()),
                  std::to_string(run.replay.refs.ramRefs()),
                  std::to_string(run.replay.refs.flashRefs()),
                  TextTable::num(run.replay.refs.avgMemCycles(), 3)});
    }
    if (a.has("--csv"))
        std::printf("%s", t.renderCsv().c_str());
    else
        std::printf("%s", t.render().c_str());
    std::printf("%zu sessions in %.2fs with %u jobs\n", runs.size(),
                secs, defaultJobs());
    auto &reg = obs::Registry::global();
    reg.gauge("sessions.seconds").set(secs);
    reg.gauge("sessions.jobs")
        .set(static_cast<double>(defaultJobs()));
    return 0;
}

/** `sweep --packed`: the 56-configuration case study fed from a
 *  packed PTPK trace instead of a live replay. The default path
 *  streams blocks from disk with O(block) memory; --in-memory decodes
 *  the whole trace up front and feeds it record by record, giving CI
 *  a differential reference for the streaming path. */
int
cmdSweepPacked(const Args &a, const char *path)
{
    // Journalled mode: each configuration is a supervised work item,
    // results land in a CSV finalized atomically at the end, and the
    // journal makes the sweep resumable after a crash.
    if (a.value("--journal") || a.value("--deadline") ||
        a.value("--max-retries")) {
        if (a.value("--timeseries-out")) {
            std::fprintf(
                stderr,
                "sweep: --timeseries-out is not supported with "
                "supervised (journalled) runs — a resumed run skips "
                "finished configurations; use the plain sweep\n");
            return 2;
        }
        const char *out = a.value("--out");
        if (!out) {
            std::fprintf(stderr,
                         "sweep: supervised mode needs --out CSV "
                         "(the finalized results file)\n");
            return 2;
        }
        super::JobOptions jo = jobOptionsFrom(a);
        return reportJob(
            "sweep", super::runSweepJob(
                         path, cache::CacheSweep::paper56(), out, jo));
    }

    auto t0 = std::chrono::steady_clock::now();
    workload::PackedSweepResult res;
    const char *mode;
    if (a.has("--in-memory")) {
        mode = "in-memory";
        trace::PackedTraceReader reader;
        if (auto r = reader.open(path); !r) {
            std::fprintf(stderr, "sweep: %s: %s\n", path,
                         r.message().c_str());
            return 1;
        }
        // Decode everything first (no reserve from the untrusted
        // footer count: each accepted block is checksum-verified and
        // capacity-bounded, so growth stays proportional to real
        // payload), then feed from memory.
        std::vector<trace::TraceRecord> all, block;
        while (reader.nextBlock(block))
            all.insert(all.end(), block.begin(), block.end());
        if (auto &r = reader.status(); !r) {
            std::fprintf(stderr, "sweep: %s: %s\n", path,
                         r.message().c_str());
            return 1;
        }
        cache::CacheSweep sweep(cache::CacheSweep::paper56());
        for (const auto &rec : all)
            sweep.feed(rec.addr, rec.cls == 1);
        sweep.finish();
        res.caches = sweep.caches();
        res.refs = all.size();
    } else {
        mode = "streaming";
        res = workload::sweepPackedFile(
            path, cache::CacheSweep::paper56(), 0, &gSigint);
        if (res.interrupted) {
            std::fprintf(stderr, "sweep: interrupted\n");
            return kExitInterrupted;
        }
        if (!res.status) {
            std::fprintf(stderr, "sweep: %s: %s\n", path,
                         res.status.message().c_str());
            return 1;
        }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    // The no-cache baseline needs the RAM/flash split, which every
    // shard accumulated identically while consuming the stream.
    const cache::CacheStats &any = res.caches.front().stats();
    double base = cache::CacheStats::noCacheAccessTime(
        any.ramAccesses, any.flashAccesses);

    TextTable t("56-configuration sweep from packed trace "
                "(miss rate %, T_eff cycles)");
    t.setHeader({"Config", "Miss rate", "T_eff", "vs no cache"});
    auto &reg = obs::Registry::global();
    for (const auto &c : res.caches) {
        double teff = c.stats().avgAccessTimePaper();
        t.addRow({c.config().name(),
                  TextTable::percent(c.stats().missRate(), 3),
                  TextTable::num(teff, 3),
                  TextTable::percent(
                      base > 0 ? 1.0 - teff / base : 0.0, 1)});
        if (obs::profileSink()) {
            reg.gauge("cache.sweep." + c.config().name() +
                      ".miss_rate")
                .set(c.stats().missRate());
        }
    }
    if (a.has("--csv"))
        std::printf("%s", t.renderCsv().c_str());
    else
        std::printf("%s\nno-cache baseline: %.3f cycles\n",
                    t.render().c_str(), base);
    std::fprintf(stderr, "%llu refs from %s (%s) in %.2fs\n",
                 static_cast<unsigned long long>(res.refs), path, mode,
                 secs);
    if (const char *tsOut = a.value("--timeseries-out")) {
        u64 w = tsIntervalArg(a);
        if (!w) {
            std::fprintf(stderr,
                         "sweep: --ts-interval must be positive\n");
            return 2;
        }
        obs::Timeseries ts(w, obs::Timeseries::Domain::Refs);
        if (!packedTraceToRefSeries(path, ts, "sweep") ||
            !writeTimeseries(ts, tsOut, "sweep"))
            return 1;
    }
    return 0;
}

int
cmdSweep(const Args &a)
{
    if (a.has("--sessions"))
        return cmdSweepSessions(a);
    if (const char *packed = a.value("--packed"))
        return cmdSweepPacked(a, packed);
    core::Session s;
    if (!loadSession(a, s))
        return 1;
    cache::CacheSweep sweep(cache::CacheSweep::paper56());
    SweepSink sink(sweep);
    core::ReplayConfig cfg;
    trace::TeeSink tee;
    tee.add(&sink);
    cfg.extraRefSink = &tee;

    // Sweep telemetry uses the reference-index domain: interval k
    // covers refs [k*W, (k+1)*W), and only the mix/energy columns
    // are meaningful (a cache sweep has no single timeline).
    const char *tsOut = a.value("--timeseries-out");
    std::unique_ptr<obs::Timeseries> ts;
    std::unique_ptr<RefsTsSink> tsSink;
    if (tsOut) {
        u64 w = tsIntervalArg(a);
        if (!w) {
            std::fprintf(stderr,
                         "sweep: --ts-interval must be positive\n");
            return 2;
        }
        ts = std::make_unique<obs::Timeseries>(
            w, obs::Timeseries::Domain::Refs);
        tsSink = std::make_unique<RefsTsSink>(*ts);
        tee.add(tsSink.get());
    }

    Heartbeat hb;
    if (!a.has("--quiet"))
        hb.install(cfg.options);
    cfg.options.cancel = &gSigint;

    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);
    if (r.replayStats.interrupted) {
        std::fprintf(stderr, "sweep: interrupted\n");
        return kExitInterrupted;
    }
    sweep.finish();
    if (ts && !writeTimeseries(*ts, tsOut, "sweep"))
        return 1;

    TextTable t("56-configuration sweep (miss rate %, T_eff cycles)");
    t.setHeader({"Config", "Miss rate", "T_eff", "vs no cache"});
    double base = r.refs.avgMemCycles();
    auto &reg = obs::Registry::global();
    for (const auto &c : sweep.caches()) {
        double teff = c.stats().avgAccessTimePaper();
        t.addRow({c.config().name(),
                  TextTable::percent(c.stats().missRate(), 3),
                  TextTable::num(teff, 3),
                  TextTable::percent(1.0 - teff / base, 1)});
        if (obs::profileSink()) {
            reg.gauge("cache.sweep." + c.config().name() +
                      ".miss_rate")
                .set(c.stats().missRate());
        }
    }
    if (a.has("--csv"))
        std::printf("%s", t.renderCsv().c_str());
    else
        std::printf("%s\nno-cache baseline: %.3f cycles\n",
                    t.render().c_str(), base);
    return 0;
}

// ---------------------------------------------------------------------
// `palmtrace trace`: the packed-trace toolbox.

// Format sniffing and record pulling live in trace/tracediff.h so
// tests and tools share one implementation.
using trace::dinLabelToKind;
using trace::kindToDinLabel;
using trace::sniffTraceFormat;
using trace::TraceFormat;

/** Parses --block, defaulting and bounds-checking. @return 0 on a
 *  bad value (caller reports). */
u32
blockCapacityArg(const Args &a)
{
    const char *arg = a.value("--block");
    if (!arg)
        return trace::kPackedDefaultBlockCapacity;
    unsigned long v = std::strtoul(arg, nullptr, 0);
    if (v < 1 || v > trace::kPackedMaxBlockCapacity)
        return 0;
    return static_cast<u32>(v);
}

int
cmdTracePack(const Args &a, const std::vector<const char *> &ops)
{
    u32 cap = blockCapacityArg(a);
    if (!cap) {
        std::fprintf(stderr,
                     "trace pack: --block must be in [1, %u]\n",
                     trace::kPackedMaxBlockCapacity);
        return 2;
    }

    const char *synthetic = a.value("--synthetic");
    const char *in = nullptr;
    const char *out = nullptr;
    if (synthetic) {
        if (ops.size() != 2) {
            std::fprintf(stderr,
                         "usage: palmtrace trace pack --synthetic N "
                         "OUT [--seed S] [--block N]\n");
            return 2;
        }
        out = ops[1];
    } else {
        if (ops.size() != 3) {
            std::fprintf(stderr, "usage: palmtrace trace pack IN OUT "
                                 "[--block N]\n");
            return 2;
        }
        in = ops[1];
        out = ops[2];
    }

    trace::PackedTraceWriter w(out, cap);
    if (!w.ok()) {
        std::fprintf(stderr,
                     "trace pack: cannot open '%s' for writing\n",
                     out);
        return 1;
    }

    if (synthetic) {
        // The Figure 7 synthetic desktop trace, packed directly from
        // the generator with O(block) memory.
        workload::DesktopTraceConfig cfg;
        cfg.refs = std::strtoull(synthetic, nullptr, 0);
        if (!cfg.refs) {
            std::fprintf(stderr,
                         "trace pack: --synthetic needs a positive "
                         "reference count\n");
            return 2;
        }
        cfg.seed = std::strtoull(a.value("--seed", "7"), nullptr, 0);
        workload::DesktopTraceGen gen(cfg);
        gen.generate([&](Addr addr, u8 kind) { w.add(addr, kind, 0); });
    } else {
        switch (sniffTraceFormat(in)) {
          case TraceFormat::Unreadable:
            std::fprintf(stderr, "trace pack: cannot read '%s'\n", in);
            return 1;
          case TraceFormat::Packed:
            std::fprintf(stderr,
                         "trace pack: '%s' is already a packed PTPK "
                         "trace\n",
                         in);
            return 1;
          case TraceFormat::Pttr: {
            trace::TraceBuffer buf;
            if (auto res = trace::TraceBuffer::load(in, buf); !res) {
                std::fprintf(stderr, "trace pack: %s: %s\n", in,
                             res.message().c_str());
                return 1;
            }
            for (const auto &r : buf.records())
                w.add(r);
            break;
          }
          case TraceFormat::Din: {
            trace::DineroStats st;
            s64 n = trace::readDineroFile(
                in,
                [&](Addr addr, u8 label) {
                    w.add(addr, dinLabelToKind(label), 0);
                },
                &st);
            if (n < 0) {
                std::fprintf(stderr, "trace pack: cannot read '%s'\n",
                             in);
                return 1;
            }
            if (st.malformed || st.overlong) {
                std::fprintf(
                    stderr,
                    "trace pack: %llu malformed line(s), %llu "
                    "overlong line(s) in '%s'\n",
                    static_cast<unsigned long long>(st.malformed),
                    static_cast<unsigned long long>(st.overlong), in);
            }
            break;
          }
        }
    }

    std::string err;
    if (!w.close(&err)) {
        std::fprintf(stderr, "trace pack: %s\n", err.c_str());
        return 1;
    }
    double perRef = w.count()
                        ? static_cast<double>(w.bytesWritten()) /
                              static_cast<double>(w.count())
                        : 0.0;
    std::printf("packed %llu refs into %s (%llu bytes, %.2f B/ref)\n",
                static_cast<unsigned long long>(w.count()), out,
                static_cast<unsigned long long>(w.bytesWritten()),
                perRef);
    return 0;
}

int
cmdTraceUnpack(const Args &a, const std::vector<const char *> &ops)
{
    if (ops.size() != 3) {
        std::fprintf(stderr, "usage: palmtrace trace unpack IN OUT "
                             "[--format din|pttr]\n");
        return 2;
    }
    const char *in = ops[1];
    const char *out = ops[2];
    const char *format = a.value("--format", "din");
    bool toPttr = !std::strcmp(format, "pttr");
    if (!toPttr && std::strcmp(format, "din")) {
        std::fprintf(stderr,
                     "trace unpack: unknown --format '%s' (want din "
                     "or pttr)\n",
                     format);
        return 2;
    }

    trace::PackedTraceReader reader;
    if (auto res = reader.open(in); !res) {
        std::fprintf(stderr, "trace unpack: %s: %s\n", in,
                     res.message().c_str());
        return 1;
    }

    std::vector<trace::TraceRecord> block;
    u64 n = 0;
    if (toPttr) {
        // PTTR is an in-memory format anyway; materialize and save.
        trace::TraceBuffer buf;
        while (reader.nextBlock(block)) {
            for (const auto &r : block) {
                buf.onRef(r.addr, static_cast<m68k::AccessKind>(r.kind),
                          r.cls ? device::RefClass::Flash
                                : device::RefClass::Ram);
            }
            n += block.size();
        }
        if (auto &res = reader.status(); !res) {
            std::fprintf(stderr, "trace unpack: %s: %s\n", in,
                         res.message().c_str());
            return 1;
        }
        if (!buf.save(out)) {
            std::fprintf(stderr,
                         "trace unpack: cannot write '%s'\n", out);
            return 1;
        }
    } else {
        trace::DineroWriter w(out);
        if (!w.ok()) {
            std::fprintf(stderr,
                         "trace unpack: cannot open '%s' for "
                         "writing\n",
                         out);
            return 1;
        }
        while (reader.nextBlock(block)) {
            for (const auto &r : block)
                w.emit(r.addr, kindToDinLabel(r.kind));
            n += block.size();
        }
        if (auto &res = reader.status(); !res) {
            std::fprintf(stderr, "trace unpack: %s: %s\n", in,
                         res.message().c_str());
            return 1;
        }
    }
    std::printf("unpacked %llu refs into %s (%s)\n",
                static_cast<unsigned long long>(n), out,
                toPttr ? "PTTR" : "din");
    return 0;
}

int
cmdTraceInfo(const Args &, const std::vector<const char *> &ops)
{
    if (ops.size() != 2) {
        std::fprintf(stderr, "usage: palmtrace trace info FILE\n");
        return 2;
    }
    const char *path = ops[1];
    TextTable t("Trace statistics");
    t.setHeader({"Quantity", "Value"});
    auto row = [&](const char *what, const std::string &v) {
        t.addRow({what, v});
    };
    auto num = [](u64 v) { return std::to_string(v); };

    u64 kinds[3] = {0, 0, 0};
    u64 classes[2] = {0, 0};
    auto tally = [&](u8 kind, u8 cls) {
        ++kinds[kind > 2 ? 2 : kind];
        ++classes[cls ? 1 : 0];
    };

    switch (sniffTraceFormat(path)) {
      case TraceFormat::Unreadable:
        std::fprintf(stderr, "trace info: cannot read '%s'\n", path);
        return 1;
      case TraceFormat::Packed: {
        trace::PackedTraceReader reader;
        if (auto res = reader.open(path); !res) {
            std::fprintf(stderr, "trace info: %s: %s\n", path,
                         res.message().c_str());
            return 1;
        }
        std::vector<trace::TraceRecord> block;
        u64 n = 0;
        while (reader.nextBlock(block)) {
            for (const auto &r : block)
                tally(r.kind, r.cls);
            n += block.size();
        }
        if (auto &res = reader.status(); !res) {
            std::fprintf(stderr, "trace info: %s: %s\n", path,
                         res.message().c_str());
            return 1;
        }
        row("format", "PTPK packed");
        row("records", num(n));
        row("blocks", num(reader.blockCount()));
        row("block capacity", num(reader.blockCapacity()));
        row("file bytes", num(reader.fileBytes()));
        row("bytes/ref",
            n ? TextTable::num(static_cast<double>(reader.fileBytes()) /
                                   static_cast<double>(n),
                               2)
              : "-");
        row("integrity", "ok (all blocks verified)");
        break;
      }
      case TraceFormat::Pttr: {
        trace::TraceBuffer buf;
        if (auto res = trace::TraceBuffer::load(path, buf); !res) {
            std::fprintf(stderr, "trace info: %s: %s\n", path,
                         res.message().c_str());
            return 1;
        }
        for (const auto &r : buf.records())
            tally(r.kind, r.cls);
        row("format", "PTTR raw");
        row("records", num(buf.records().size()));
        row("file bytes", num(8 + 6 * buf.records().size()));
        row("bytes/ref", "6.00");
        break;
      }
      case TraceFormat::Din: {
        trace::DineroStats st;
        s64 n = trace::readDineroFile(
            path,
            [&](Addr, u8 label) { tally(dinLabelToKind(label), 0); },
            &st);
        if (n < 0) {
            std::fprintf(stderr, "trace info: cannot read '%s'\n",
                         path);
            return 1;
        }
        row("format", "Dinero din text");
        row("records", num(static_cast<u64>(n)));
        row("malformed lines", num(st.malformed));
        row("overlong lines", num(st.overlong));
        break;
      }
    }
    row("fetches", num(kinds[0]));
    row("reads", num(kinds[1]));
    row("writes", num(kinds[2]));
    row("RAM refs", num(classes[0]));
    row("flash refs", num(classes[1]));
    std::printf("%s", t.render().c_str());
    return 0;
}

/** `trace diff A B`: record-by-record comparison of two traces in
 *  any mix of formats; reports the first divergence. The epoch CI
 *  job uses it to prove stitched == sequential. Exit codes are a
 *  contract: 0 identical, 1 traces differ, 2 unreadable/corrupt
 *  input (or usage error). */
int
cmdTraceDiff(const Args &, const std::vector<const char *> &ops)
{
    if (ops.size() != 3) {
        std::fprintf(stderr, "usage: palmtrace trace diff A B\n");
        return 2;
    }
    trace::DiffResult d = trace::diffTraces(ops[1], ops[2]);
    switch (d.outcome) {
      case trace::DiffOutcome::Identical:
        std::printf("traces identical (%llu records)\n",
                    static_cast<unsigned long long>(d.records));
        return 0;
      case trace::DiffOutcome::Differ:
        std::printf("%s\n", d.detail.c_str());
        return 1;
      case trace::DiffOutcome::Error:
      default:
        std::fprintf(stderr, "trace diff: %s\n", d.detail.c_str());
        return 2;
    }
}

int
cmdTrace(const Args &a)
{
    auto ops = a.operands();
    if (ops.empty()) {
        std::fprintf(stderr, "trace: missing operation (pack, "
                             "unpack, info, diff)\n");
        return 2;
    }
    if (!std::strcmp(ops[0], "pack"))
        return cmdTracePack(a, ops);
    if (!std::strcmp(ops[0], "unpack"))
        return cmdTraceUnpack(a, ops);
    if (!std::strcmp(ops[0], "info"))
        return cmdTraceInfo(a, ops);
    if (!std::strcmp(ops[0], "diff"))
        return cmdTraceDiff(a, ops);
    std::fprintf(stderr,
                 "trace: unknown operation '%s' (want pack, unpack, "
                 "info, or diff)\n",
                 ops[0]);
    return 2;
}

// ---------------------------------------------------------------------
// `palmtrace epoch`: the epoch-parallel replay toolbox.

bool
loadSessionAt(const char *base, core::Session &s)
{
    if (auto res = core::Session::load(base, s); !res) {
        std::fprintf(stderr, "cannot load session '%s': %s\n", base,
                     res.message().c_str());
        return false;
    }
    return true;
}

/** `epoch plan BASE --out PLAN`: the scan pass alone — replay once
 *  without profiling instrumentation and save the checkpoint fan-out
 *  plan as a reusable artifact. */
// ---------------------------------------------------------------------
// Supervised jobs: journalled, watchdog-guarded, resumable runs.

/** The shared supervision knobs, straight from the command line. */
super::JobOptions
jobOptionsFrom(const Args &a)
{
    super::JobOptions jo;
    jo.maxAttempts = static_cast<u32>(
        std::strtoul(a.value("--max-retries", "3"), nullptr, 0));
    jo.deadlineMs =
        std::strtoull(a.value("--deadline", "0"), nullptr, 0);
    if (const char *j = a.value("--journal"))
        jo.journalPath = j;
    jo.globalCancel = &gSigint;
    return jo;
}

/** Uniform reporting and exit code for a supervised job: 0 finished,
 *  1 failed or degraded, 130 interrupted (resume to continue). */
int
reportJob(const char *what, const super::JobResult &r)
{
    if (r.nothingToDo) {
        std::printf("%s: journal is already finalized%s; output %s\n",
                    what, r.degraded ? " (degraded)" : "",
                    r.outPath.c_str());
        return 0;
    }
    if (r.interrupted) {
        std::fprintf(stderr,
                     "%s: interrupted; 'palmtrace resume' on the "
                     "journal continues the run\n",
                     what);
        return kExitInterrupted;
    }
    if (!r.ok) {
        std::fprintf(stderr, "%s: %s\n", what, r.error.c_str());
        return 1;
    }
    std::printf("%s: %s (%llu done, %llu skipped, %llu quarantined, "
                "%llu retries, fnv %016llx)\n",
                what, r.outPath.c_str(),
                static_cast<unsigned long long>(r.super.itemsDone),
                static_cast<unsigned long long>(r.super.itemsSkipped),
                static_cast<unsigned long long>(
                    r.super.itemsQuarantined),
                static_cast<unsigned long long>(r.super.retries),
                static_cast<unsigned long long>(r.outFnv));
    if (r.degraded) {
        std::fprintf(stderr, "%s: DEGRADED: %s\n", what,
                     r.super.firstError.c_str());
        return 1;
    }
    return 0;
}

/**
 * Deterministic fleet session specs: @p count sessions cycling the
 * four Table 1 presets, each with a per-index seed derived from the
 * fleet seed — a pure function of (count, scale, seed), so any two
 * invocations (and any job counts) produce the same sessions.
 */
std::vector<workload::SessionSpec>
fleetSpecs(unsigned count, double scale, u64 seed)
{
    std::vector<workload::SessionSpec> presets =
        workload::table1Specs(scale);
    std::vector<workload::SessionSpec> specs;
    specs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        workload::SessionSpec s = presets[i % presets.size()];
        s.name = "fleet-" + std::to_string(i) + "-" + s.name;
        s.config.seed += seed * 0x9E3779B97F4A7C15ull +
                         u64{i} * 0x2545F4914F6CDD1Dull;
        specs.push_back(std::move(s));
    }
    return specs;
}

/** `fleet --out BASE`: fleet-scale batched collect+replay with one
 *  streamed packed trace per session plus a summary CSV. */
int
cmdFleet(const Args &a)
{
    const char *out = a.value("--out");
    if (!out) {
        std::fprintf(
            stderr,
            "usage: palmtrace fleet --out BASE [--count N] "
            "[--scale X] [--seed S] [--block N] [--save-sessions] "
            "[--journal FILE] [--deadline MS] [--max-retries N]\n");
        return 2;
    }
    unsigned count = static_cast<unsigned>(
        std::strtoul(a.value("--count", "8"), nullptr, 0));
    if (!count)
        count = 8;
    double scale = std::atof(a.value("--scale", "1"));
    if (scale <= 0)
        scale = 1.0;
    const u64 seed =
        std::strtoull(a.value("--seed", "1"), nullptr, 0);

    super::JobOptions jo = jobOptionsFrom(a);
    if (const char *b = a.value("--block")) {
        jo.blockCapacity =
            static_cast<u32>(std::strtoul(b, nullptr, 0));
    }
    if (const char *remote = a.value("--remote")) {
        // Route the whole fleet through a resident server. The
        // artifacts come back byte-identical, so the only visible
        // difference is where the sessions ran.
        if (a.has("--save-sessions")) {
            std::fprintf(stderr,
                         "fleet: --save-sessions is ignored with "
                         "--remote (sessions live server-side)\n");
        }
        serve::ClientOptions co;
        co.endpoint = remote;
        return reportJob(
            "fleet",
            serve::runRemoteFleet(fleetSpecs(count, scale, seed), out,
                                  co, jo));
    }
    super::FleetOptions fo;
    fo.saveSessions = a.has("--save-sessions");
    return reportJob("fleet",
                     super::runFleetJob(fleetSpecs(count, scale, seed),
                                        out, jo, fo));
}

/** The server endpoint named by --socket PATH or --tcp PORT. */
std::string
endpointFrom(const Args &a)
{
    if (const char *s = a.value("--socket"))
        return s;
    if (const char *t = a.value("--tcp"))
        return std::string("tcp:") + t;
    return {};
}

/** `submit --socket PATH --out BASE`: a fleet through a resident
 *  server, byte-identical to running it locally. */
int
cmdSubmit(const Args &a)
{
    const std::string endpoint = endpointFrom(a);
    const char *out = a.value("--out");
    if (endpoint.empty() || !out) {
        std::fprintf(
            stderr,
            "usage: palmtrace submit (--socket PATH | --tcp PORT) "
            "--out BASE [--count N] [--scale X] [--seed S] "
            "[--block N] [--journal FILE]\n");
        return 2;
    }
    unsigned count = static_cast<unsigned>(
        std::strtoul(a.value("--count", "8"), nullptr, 0));
    if (!count)
        count = 8;
    double scale = std::atof(a.value("--scale", "1"));
    if (scale <= 0)
        scale = 1.0;
    const u64 seed =
        std::strtoull(a.value("--seed", "1"), nullptr, 0);

    super::JobOptions jo = jobOptionsFrom(a);
    if (const char *b = a.value("--block")) {
        jo.blockCapacity =
            static_cast<u32>(std::strtoul(b, nullptr, 0));
    }
    serve::ClientOptions co;
    co.endpoint = endpoint;
    return reportJob(
        "submit",
        serve::runRemoteFleet(fleetSpecs(count, scale, seed), out, co,
                              jo));
}

/** `serve --socket PATH`: the resident fleet server. Runs until
 *  SIGTERM/SIGINT or a client Shutdown frame, then drains. */
int
cmdServe(const Args &a)
{
    const char *socket = a.value("--socket");
    if (!socket) {
        std::fprintf(
            stderr,
            "usage: palmtrace serve --socket PATH [--tcp PORT] "
            "[--jobs N] [--max-sessions M] [--session-timeout MS] "
            "[--scratch DIR]\n");
        return 2;
    }
    serve::ServeOptions so;
    so.socketPath = socket;
    if (const char *t = a.value("--tcp"))
        so.tcpPort = std::atoi(t);
    so.maxSessions = static_cast<u32>(
        std::strtoul(a.value("--max-sessions", "64"), nullptr, 0));
    if (!so.maxSessions)
        so.maxSessions = 64;
    so.sessionTimeoutMs = std::strtoull(
        a.value("--session-timeout", "0"), nullptr, 0);
    if (const char *j = a.value("--jobs"))
        so.jobs = static_cast<unsigned>(std::atoi(j));
    if (const char *s = a.value("--scratch"))
        so.scratchDir = s;

    serve::Server server(so);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "serve: %s\n", err.c_str());
        return 1;
    }
    std::signal(SIGTERM, onSigterm);
    if (server.tcpPort() >= 0) {
        std::printf("serve: listening on %s (tcp port %d)\n", socket,
                    server.tcpPort());
    } else {
        std::printf("serve: listening on %s\n", socket);
    }
    std::fflush(stdout);

    // The serving loop: all the work happens on the server's own
    // threads; this thread just waits for a reason to drain. The
    // signal handlers only set flags — the actual drain (condition
    // variables, joins) runs here, in normal code.
    while (!gSigterm && !gSigint.cancelled() && !server.draining()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("serve: draining\n");
    std::fflush(stdout);
    serve::ServeStats st = server.stop();
    std::printf(
        "serve: drained (%llu sessions, %llu failed, %llu rejected, "
        "%llu bytes streamed, %llu connections, %llu bad frames)\n",
        static_cast<unsigned long long>(st.sessionsDone),
        static_cast<unsigned long long>(st.sessionsFailed),
        static_cast<unsigned long long>(st.sessionsRejected),
        static_cast<unsigned long long>(st.bytesStreamed),
        static_cast<unsigned long long>(st.connections),
        static_cast<unsigned long long>(st.badFrames));
    return 0;
}

/** `resume JOURNAL`: pick a journalled job back up where it stopped. */
int
cmdResume(const Args &a)
{
    const char *journal = a.operand();
    if (!journal) {
        std::fprintf(stderr,
                     "usage: palmtrace resume JOURNAL [--jobs N]\n");
        return 2;
    }
    super::JobOptions jo;
    jo.globalCancel = &gSigint;
    if (const char *j = a.value("--jobs"))
        jo.jobs = static_cast<unsigned>(std::atoi(j));
    // Remote-fleet journals are resumed by the serve client (the
    // endpoint travels in the journal; --socket/--tcp override it).
    if (serve::isRemoteFleetJournal(journal)) {
        return reportJob("resume",
                         serve::resumeRemoteFleetJob(
                             journal, endpointFrom(a), jo));
    }
    return reportJob("resume", super::resumeJob(journal, jo));
}

int
cmdEpochPlan(const Args &a, const std::vector<const char *> &ops)
{
    if (ops.size() != 2) {
        std::fprintf(stderr,
                     "usage: palmtrace epoch plan BASE --out PLAN "
                     "[--epochs N | --every-events K | "
                     "--every-cycles C]\n");
        return 2;
    }
    const char *out = a.value("--out");
    if (!out) {
        std::fprintf(stderr, "epoch plan: --out PLAN is required\n");
        return 2;
    }
    core::Session s;
    if (!loadSessionAt(ops[1], s))
        return 1;

    epoch::ScanOptions so;
    so.epochs = std::strtoull(a.value("--epochs", "0"), nullptr, 0);
    so.everyEvents =
        std::strtoull(a.value("--every-events", "0"), nullptr, 0);
    so.everyCycles =
        std::strtoull(a.value("--every-cycles", "0"), nullptr, 0);

    epoch::ScanResult scan = epoch::scanSession(s, so);
    if (!scan.ok) {
        std::fprintf(stderr, "epoch plan: %s\n", scan.error.c_str());
        return 1;
    }
    std::string err;
    if (!scan.plan.save(out, &err)) {
        std::fprintf(stderr, "epoch plan: %s\n", err.c_str());
        return 1;
    }
    std::printf("epoch plan %s: %llu epochs over %llu events "
                "(scan %.2fs, %llu instructions)\n",
                out,
                static_cast<unsigned long long>(scan.plan.epochCount()),
                static_cast<unsigned long long>(scan.plan.totalEvents),
                scan.seconds,
                static_cast<unsigned long long>(scan.instructions));
    return 0;
}

/** `epoch run BASE PLAN --out FILE`: the profile pass alone — fan a
 *  saved plan's epochs over the worker pool and stitch the shards. */
int
cmdEpochRun(const Args &a, const std::vector<const char *> &ops)
{
    if (ops.size() != 3) {
        std::fprintf(stderr,
                     "usage: palmtrace epoch run BASE PLAN --out FILE "
                     "[--keep-shards] [--retries R] [--block N]\n");
        return 2;
    }
    const char *out = a.value("--out");
    if (!out) {
        std::fprintf(stderr, "epoch run: --out FILE is required\n");
        return 2;
    }
    u32 cap = blockCapacityArg(a);
    if (!cap) {
        std::fprintf(stderr, "epoch run: --block must be in [1, %u]\n",
                     trace::kPackedMaxBlockCapacity);
        return 2;
    }
    core::Session s;
    if (!loadSessionAt(ops[1], s))
        return 1;
    epoch::EpochPlan plan;
    if (auto res = epoch::EpochPlan::load(ops[2], plan); !res) {
        std::fprintf(stderr, "epoch run: %s: %s\n", ops[2],
                     res.message().c_str());
        return 1;
    }

    // Any supervision flag routes through the journalled job runner;
    // the plain path keeps the seed behaviour (and its own retry
    // loop) untouched.
    if (a.value("--journal") || a.value("--deadline") ||
        a.value("--max-retries")) {
        if (a.value("--timeseries-out")) {
            std::fprintf(
                stderr,
                "epoch run: --timeseries-out is not supported with "
                "supervised (journalled) runs — a resumed run skips "
                "finished epochs, so their telemetry would be "
                "missing; use the plain 'epoch run' or 'replay "
                "--epochs'\n");
            return 2;
        }
        super::JobOptions jo = jobOptionsFrom(a);
        jo.blockCapacity = cap;
        jo.keepShards = a.has("--keep-shards");
        Heartbeat shb;
        if (!a.has("--quiet")) {
            jo.progress = shb.handler();
            jo.progressEveryEvents = 250;
        }
        return reportJob("epoch run",
                         super::runEpochJob(s, ops[1], plan, ops[2],
                                            out, jo));
    }

    epoch::RunOptions ro;
    ro.blockCapacity = cap;
    ro.maxRetries = static_cast<u32>(
        std::strtoul(a.value("--retries", "2"), nullptr, 0));
    ro.keepShards = a.has("--keep-shards");
    ro.cancel = &gSigint;
    const char *tsOut = a.value("--timeseries-out");
    std::unique_ptr<obs::Timeseries> ts;
    if (tsOut) {
        u64 w = tsIntervalArg(a);
        if (!w) {
            std::fprintf(stderr,
                         "epoch run: --ts-interval must be positive\n");
            return 2;
        }
        ts = std::make_unique<obs::Timeseries>(w);
        ro.timeseries = ts.get();
    }
    Heartbeat hb;
    if (!a.has("--quiet")) {
        ro.progress = hb.handler();
        ro.progressEveryEvents = 250;
    }
    epoch::RunResult run = epoch::runEpochs(s, plan, out, ro);
    if (!run.ok) {
        std::fprintf(stderr, "epoch run: %s\n", run.error.c_str());
        return run.interrupted ? kExitInterrupted : 1;
    }
    printEpochRun(run, out);
    if (ts) {
        if (!addStitchedCacheColumns(*ts, out, "epoch run") ||
            !writeTimeseries(*ts, tsOut, "epoch run"))
            return 1;
    }
    return run.divergences.empty() ? 0 : 1;
}

/** `epoch info PLAN`: summarize a plan artifact. */
int
cmdEpochInfo(const Args &, const std::vector<const char *> &ops)
{
    if (ops.size() != 2) {
        std::fprintf(stderr, "usage: palmtrace epoch info PLAN\n");
        return 2;
    }
    epoch::EpochPlan plan;
    if (auto res = epoch::EpochPlan::load(ops[1], plan); !res) {
        std::fprintf(stderr, "epoch info: %s: %s\n", ops[1],
                     res.message().c_str());
        return 1;
    }
    TextTable t("Epoch plan");
    t.setHeader({"Epoch", "First event", "Events", "Start tick",
                 "Fingerprint"});
    for (std::size_t k = 0; k < plan.entries.size(); ++k) {
        const auto &e = plan.entries[k];
        t.addRow({std::to_string(k),
                  std::to_string(e.state.eventIndex),
                  std::to_string(plan.lastEvent(k) -
                                 plan.firstEvent(k)),
                  std::to_string(e.state.machine.cycleCount /
                                 kCyclesPerTick),
                  fpHex(e.fingerprint)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("%llu epochs over %llu events; settle %llu ticks; "
                "log %s, final state %s\n",
                static_cast<unsigned long long>(plan.epochCount()),
                static_cast<unsigned long long>(plan.totalEvents),
                static_cast<unsigned long long>(plan.settleTicks),
                fpHex(plan.logFingerprint).c_str(),
                fpHex(plan.finalFingerprint).c_str());
    return 0;
}

int
cmdEpoch(const Args &a)
{
    auto ops = a.operands();
    if (ops.empty()) {
        std::fprintf(stderr,
                     "epoch: missing operation (plan, run, info)\n");
        return 2;
    }
    if (!std::strcmp(ops[0], "plan"))
        return cmdEpochPlan(a, ops);
    if (!std::strcmp(ops[0], "run"))
        return cmdEpochRun(a, ops);
    if (!std::strcmp(ops[0], "info"))
        return cmdEpochInfo(a, ops);
    std::fprintf(stderr,
                 "epoch: unknown operation '%s' (want plan, run, or "
                 "info)\n",
                 ops[0]);
    return 2;
}

int
cmdDisasm(const Args &a)
{
    u32 count = static_cast<u32>(
        std::strtoul(a.value("--count", "40"), nullptr, 0));
    const os::RomImage &rom = os::builtRom();
    device::Device dev;
    dev.bus().loadRom(os::builtRomPaged());
    std::printf("PilotOS ROM @ 0x%08X (boot 0x%08X, dispatcher "
                "0x%08X)\n\n",
                device::kRomBase, rom.syms.boot, rom.syms.dispatcher);
    Addr pc = rom.syms.dispatcher;
    for (u32 i = 0; i < count; ++i) {
        auto d = m68k::disassemble(dev.bus(), pc);
        std::printf("  %08X  %s\n", pc, d.text.c_str());
        pc += d.length;
    }
    return 0;
}

/** Appends one `- key: value` bullet to the report body. */
void
mdBullet(std::string &md, const std::string &key,
         const std::string &value)
{
    md += "- " + key + ": " + value + "\n";
}

/** `report --metrics FILE`: the counters and histogram percentiles
 *  section. */
bool
reportMetricsSection(std::string &md, const char *path)
{
    std::string text;
    if (!readFileText(path, text)) {
        std::fprintf(stderr, "report: cannot read '%s'\n", path);
        return false;
    }
    json::JsonValue doc;
    if (auto r = json::parse(text, doc); !r) {
        std::fprintf(stderr, "report: %s: %s\n", path,
                     r.message().c_str());
        return false;
    }
    if (doc.stringOr("schema", "") != "palmtrace-metrics-v1") {
        std::fprintf(stderr,
                     "report: %s: not a palmtrace-metrics-v1 file\n",
                     path);
        return false;
    }

    md += "\n## Metrics\n\n";
    mdBullet(md, "source", path);
    if (doc.has("label"))
        mdBullet(md, "scope label", doc.stringOr("label", ""));

    const json::JsonValue &counters = doc.get("counters");
    if (counters.isObject() && !counters.object().empty()) {
        md += "\n| counter | value |\n|---|---:|\n";
        for (const auto &[name, v] : counters.object()) {
            md += "| `" + name + "` | " +
                  std::to_string(static_cast<u64>(v.number())) +
                  " |\n";
        }
    }

    const json::JsonValue &gauges = doc.get("gauges");
    if (gauges.isObject() && !gauges.object().empty()) {
        md += "\n| gauge | value |\n|---|---:|\n";
        for (const auto &[name, v] : gauges.object()) {
            md += "| `" + name + "` | " +
                  TextTable::num(v.number(), 3) + " |\n";
        }
    }

    const json::JsonValue &hists = doc.get("histograms");
    if (hists.isObject() && !hists.object().empty()) {
        md += "\n| histogram | count | mean | p50 | p95 | p99 |\n"
              "|---|---:|---:|---:|---:|---:|\n";
        for (const auto &[name, h] : hists.object()) {
            md += "| `" + name + "` | " +
                  std::to_string(h.u64Or("count", 0)) + " | " +
                  TextTable::num(h.numberOr("mean", 0), 3) + " | " +
                  TextTable::num(h.numberOr("p50", 0), 3) + " | " +
                  TextTable::num(h.numberOr("p95", 0), 3) + " | " +
                  TextTable::num(h.numberOr("p99", 0), 3) + " |\n";
        }
    }
    return true;
}

/** `report --timeseries FILE`: run totals plus the interval IPC
 *  distribution, from the same aggregates `stats` prints. */
bool
reportTimeseriesSection(std::string &md, const char *path)
{
    TsSummary s = summarizeTimeseries(path);
    if (!s.ok) {
        std::fprintf(stderr, "report: %s: %s\n", path,
                     s.error.c_str());
        return false;
    }
    md += "\n## Timeseries\n\n";
    mdBullet(md, "source", path);
    mdBullet(md, "domain", s.domain);
    mdBullet(md, "interval width", std::to_string(s.interval));
    mdBullet(md, "intervals", std::to_string(s.intervals));
    if (s.instructions)
        mdBullet(md, "instructions", std::to_string(s.instructions));
    if (s.cycles)
        mdBullet(md, "cycles", std::to_string(s.cycles));
    mdBullet(md, "RAM / flash refs",
             std::to_string(s.ram) + " / " + std::to_string(s.flash));
    if (s.ram + s.flash) {
        mdBullet(md, "flash fraction",
                 TextTable::percent(
                     static_cast<double>(s.flash) /
                         static_cast<double>(s.ram + s.flash),
                     2));
    }
    if (s.l1h + s.l1m) {
        mdBullet(md, "L1 miss rate",
                 TextTable::percent(
                     static_cast<double>(s.l1m) /
                         static_cast<double>(s.l1h + s.l1m),
                     3));
    }
    if (s.l2h + s.l2m) {
        mdBullet(md, "L2 miss rate",
                 TextTable::percent(
                     static_cast<double>(s.l2m) /
                         static_cast<double>(s.l2h + s.l2m),
                     3));
    }
    if (s.events)
        mdBullet(md, "events delivered", std::to_string(s.events));
    mdBullet(md, "energy (mJ)", TextTable::num(s.energy, 3));
    if (!s.ipc.empty()) {
        md += "\n| IPC p50 | p95 | p99 |\n|---:|---:|---:|\n| " +
              TextTable::num(samplePercentile(s.ipc, 0.50), 4) +
              " | " +
              TextTable::num(samplePercentile(s.ipc, 0.95), 4) +
              " | " +
              TextTable::num(samplePercentile(s.ipc, 0.99), 4) +
              " |\n";
    }
    return true;
}

/** `report --journal FILE`: the supervised run's shape — spec, item
 *  states, footer verdict. */
bool
reportJournalSection(std::string &md, const char *path)
{
    super::JournalData jd;
    if (auto r = super::loadJournal(path, jd); !r) {
        std::fprintf(stderr, "report: %s: %s\n", path,
                     r.message().c_str());
        return false;
    }
    md += "\n## Job journal\n\n";
    mdBullet(md, "source", path);
    mdBullet(md, "job kind", super::jobKindName(jd.spec.kind));
    mdBullet(md, "items", std::to_string(jd.spec.totalItems));
    if (!jd.spec.outPath.empty())
        mdBullet(md, "output", jd.spec.outPath);
    mdBullet(md, "max attempts per item",
             std::to_string(jd.spec.maxAttempts));

    std::map<std::string, u64> byState;
    u32 maxAttempt = 0;
    for (const super::ItemRecord &rec : jd.latestPerItem()) {
        ++byState[super::itemStateName(rec.state)];
        maxAttempt = std::max(maxAttempt, rec.attempt);
    }
    std::string states;
    for (const auto &[name, n] : byState) {
        if (!states.empty())
            states += ", ";
        states += std::to_string(n) + " " + name;
    }
    mdBullet(md, "item states", states);
    if (maxAttempt > 0)
        mdBullet(md, "deepest retry", "attempt " +
                                          std::to_string(maxAttempt));
    if (jd.hasFooter) {
        mdBullet(md, "verdict",
                 super::jobStatusName(jd.footer.status));
        if (!jd.footer.note.empty())
            mdBullet(md, "note", jd.footer.note);
    } else {
        mdBullet(md, "verdict",
                 "no footer — the run crashed or is still going");
    }
    if (jd.truncatedBytes) {
        mdBullet(md, "torn tail",
                 std::to_string(jd.truncatedBytes) +
                     " bytes dropped (crash mid-append)");
    }
    return true;
}

/** `report --postmortem FILE`: the flight-recorder bundle — trigger
 *  plus each thread's last recorded moments. */
bool
reportPostmortemSection(std::string &md, const char *path)
{
    obs::FlightDump dump;
    if (auto r = obs::loadFlightDump(path, dump); !r) {
        std::fprintf(stderr, "report: %s: %s\n", path,
                     r.message().c_str());
        return false;
    }
    md += "\n## Postmortem\n\n";
    mdBullet(md, "source", path);
    mdBullet(md, "trigger", "**" + dump.reason + "**");
    mdBullet(md, "threads captured",
             std::to_string(dump.threads.size()));
    constexpr std::size_t kTail = 8;
    for (const obs::FlightThread &th : dump.threads) {
        md += "\nThread `" + std::to_string(th.tid) + "` — last " +
              std::to_string(std::min(kTail, th.entries.size())) +
              " of " + std::to_string(th.entries.size()) +
              " entries:\n\n";
        const std::size_t from =
            th.entries.size() > kTail ? th.entries.size() - kTail : 0;
        for (std::size_t i = from; i < th.entries.size(); ++i) {
            const obs::FlightEntry &e = th.entries[i];
            md += "- " + e.kind;
            if (!e.name.empty())
                md += " `" + e.name + "`";
            if (e.kind == "pc") {
                char hex[24];
                std::snprintf(hex, sizeof(hex), " 0x%08llX",
                              static_cast<unsigned long long>(
                                  e.value));
                md += hex;
            } else {
                md += " value=" + std::to_string(e.value);
            }
            if (e.cycle)
                md += " cycle=" + std::to_string(e.cycle);
            md += "\n";
        }
    }
    return true;
}

/**
 * `report`: joins a run's observability artifacts — metrics JSON,
 * timeseries JSONL, job journal, flight-recorder bundle — into one
 * markdown run report on stdout (or --out FILE). Every input is
 * optional but at least one must be given; a malformed input fails
 * the report rather than silently dropping a section.
 */
int
cmdReport(const Args &a)
{
    const char *metrics = a.value("--metrics");
    const char *timeseries = a.value("--timeseries");
    const char *journal = a.value("--journal");
    const char *postmortem = a.value("--postmortem");
    if (!metrics && !timeseries && !journal && !postmortem) {
        std::fprintf(stderr,
                     "report: nothing to report — give at least one "
                     "of --metrics, --timeseries, --journal, "
                     "--postmortem\n");
        return 2;
    }

    std::string md = "# palmtrace run report\n";
    if (journal && !reportJournalSection(md, journal))
        return 1;
    if (metrics && !reportMetricsSection(md, metrics))
        return 1;
    if (timeseries && !reportTimeseriesSection(md, timeseries))
        return 1;
    if (postmortem && !reportPostmortemSection(md, postmortem))
        return 1;

    if (const char *out = a.value("--out")) {
        std::FILE *f = std::fopen(out, "wb");
        if (!f) {
            std::fprintf(stderr, "report: cannot write '%s'\n", out);
            return 1;
        }
        std::fwrite(md.data(), 1, md.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "report written to %s\n", out);
    } else {
        std::fputs(md.c_str(), stdout);
    }
    return 0;
}

int
dispatch(const std::string &cmd, const Args &rest)
{
    if (cmd == "collect")
        return cmdCollect(rest);
    if (cmd == "info")
        return cmdInfo(rest);
    if (cmd == "replay")
        return cmdReplay(rest);
    if (cmd == "validate")
        return cmdValidate(rest);
    if (cmd == "fsck")
        return cmdFsck(rest);
    if (cmd == "stats")
        return cmdStats(rest);
    if (cmd == "sweep")
        return cmdSweep(rest);
    if (cmd == "trace")
        return cmdTrace(rest);
    if (cmd == "epoch")
        return cmdEpoch(rest);
    if (cmd == "resume")
        return cmdResume(rest);
    if (cmd == "fleet")
        return cmdFleet(rest);
    if (cmd == "serve")
        return cmdServe(rest);
    if (cmd == "submit")
        return cmdSubmit(rest);
    if (cmd == "report")
        return cmdReport(rest);
    if (cmd == "disasm")
        return cmdDisasm(rest);
    return unknownSubcommand(cmd);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    std::string cmd = argv[1];
    Args rest{argc - 2, argv + 2};

    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        printUsage(stdout);
        return 0;
    }

    // fsck/stats dispatch on artifact magic; the epoch-plan and
    // job-journal parsers live above the validate layer and hook in
    // at startup.
    epoch::registerFsckParser();
    super::registerFsckParser();

    // Ctrl-C becomes a cooperative stop: journals get their footer,
    // metrics still flush, and the process exits 130.
    std::signal(SIGINT, onSigint);

    // --postmortem FILE arms the flight recorder for the whole run;
    // the fatal-signal handlers flush its rings into FILE before the
    // default action takes over. Installed unconditionally — they are
    // pure no-ops (beyond re-raising) when the recorder stays unarmed.
    if (const char *postmortem = rest.value("--postmortem"))
        obs::FlightRecorder::global().arm(postmortem);
    std::signal(SIGSEGV, onFatalSignal);
    std::signal(SIGABRT, onFatalSignal);
    std::signal(SIGBUS, onFatalSignal);
    std::signal(SIGILL, onFatalSignal);

    // Verbosity: CLI default is quiet (tables are the output), the
    // environment can override, explicit flags win.
    setLogQuiet(true);
    applyLogEnv();
    if (rest.has("--quiet"))
        setLogLevel(LogLevel::Quiet);
    else if (rest.has("--verbose"))
        setLogLevel(LogLevel::Debug);

    // Worker threads for the parallel stages (sweep flushes, session
    // batches). PT_JOBS is the environment's default; --jobs wins.
    if (const char *jobs = rest.value("--jobs")) {
        unsigned n = static_cast<unsigned>(std::atoi(jobs));
        if (n)
            setDefaultJobs(n);
    }

    // The m68k execution engine. PT_EXEC_MODE is the environment's
    // default; --exec-mode wins. Every device this process builds
    // (replay, epoch workers, validation) samples this default.
    if (const char *em = rest.value("--exec-mode")) {
        m68k::ExecMode mode;
        if (!m68k::parseExecMode(em, &mode)) {
            std::fprintf(stderr,
                         "palmtrace: --exec-mode %s: expected "
                         "'interp' or 'translate'\n", em);
            return 2;
        }
        m68k::setDefaultExecMode(mode);
    }

    // Observability surfaces: install the registry sink when metrics
    // are wanted, arm the timeline tracer when a trace is wanted.
    const char *metricsOut = rest.value("--metrics-out");
    const char *traceOut = rest.value("--trace-out");
    obs::RegistrySink sink;
    if (metricsOut || rest.has("--profile"))
        obs::setProfileSink(&sink);
    if (traceOut)
        obs::Tracer::global().setEnabled(true);

    int rc = dispatch(cmd, rest);

    if (metricsOut) {
        std::string err;
        if (!obs::Registry::global().writeJson(metricsOut, &err)) {
            std::fprintf(stderr, "palmtrace: %s\n", err.c_str());
            rc = rc ? rc : 1;
        } else {
            std::fprintf(stderr, "metrics written to %s (%zu metrics)\n",
                         metricsOut, obs::Registry::global().size());
        }
    }
    if (traceOut) {
        std::string err;
        if (!obs::Tracer::global().writeJson(traceOut, &err)) {
            std::fprintf(stderr, "palmtrace: %s\n", err.c_str());
            rc = rc ? rc : 1;
        } else {
            std::fprintf(
                stderr, "timeline written to %s (%zu events); open "
                        "in https://ui.perfetto.dev\n",
                traceOut, obs::Tracer::global().eventCount());
        }
    }
    obs::setProfileSink(nullptr);
    return rc;
}
