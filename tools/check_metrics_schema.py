#!/usr/bin/env python3
"""Validate palmtrace observability output in CI.

Checks a metrics JSON document (written by ``--metrics-out``) against
the expectations in tools/metrics_schema.json, and optionally checks a
Chrome trace-event timeline (written by ``--trace-out``) for structural
sanity so it is guaranteed to load in Perfetto / chrome://tracing.

Also validates the other observability artifacts: a timeseries JSONL
file (written by ``--timeseries-out``) and a flight-recorder bundle
(written on a crash/divergence/watchdog trigger or via ``palmtrace
report --postmortem``).

Usage:
    check_metrics_schema.py [METRICS_JSON] [--schema SCHEMA_JSON]
                            [--trace TRACE_JSON]
                            [--timeseries TS_JSONL]
                            [--flightrec BUNDLE_JSON]

At least one artifact must be given. Exits 0 when every check passes,
1 otherwise, listing each failure. Standard library only.
"""

import argparse
import json
import numbers
import os
import sys

errors = []


def fail(msg):
    errors.append(msg)


def check_metrics(doc, schema):
    if doc.get("schema") != schema["schema"]:
        fail("metrics: schema tag is %r, want %r"
             % (doc.get("schema"), schema["schema"]))
    for section in schema["required_sections"]:
        if not isinstance(doc.get(section), dict):
            fail("metrics: missing section %r" % section)
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    histograms = doc.get("histograms", {})

    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail("metrics: counter %r is %r, want a non-negative "
                 "integer" % (name, value))
    for name, value in gauges.items():
        if not isinstance(value, numbers.Real):
            fail("metrics: gauge %r is %r, want a number"
                 % (name, value))

    for name in schema["required_counters"]:
        if name not in counters:
            fail("metrics: required counter %r is missing" % name)
    for name in schema["required_nonzero"]:
        if counters.get(name, 0) == 0:
            fail("metrics: counter %r must be nonzero" % name)
    for name in schema["required_gauges"]:
        if name not in gauges:
            fail("metrics: required gauge %r is missing" % name)
    for name in schema["required_histograms"]:
        if name not in histograms:
            fail("metrics: required histogram %r is missing" % name)

    percentiles = schema.get("histogram_percentiles",
                             ["p50", "p95", "p99"])
    for name, h in histograms.items():
        for field in (["count", "sum", "min", "max", "mean", "stddev",
                       "buckets"] + list(percentiles)):
            if field not in h:
                fail("metrics: histogram %r lacks %r" % (name, field))
        ps = [h.get(p) for p in percentiles]
        if all(isinstance(p, numbers.Real) for p in ps):
            if sorted(ps) != ps:
                fail("metrics: histogram %r percentiles not "
                     "monotone: %r" % (name, ps))
        total = 0
        for b in h.get("buckets", []):
            if (not isinstance(b, list) or len(b) != 3
                    or not all(isinstance(x, numbers.Real)
                               for x in b)):
                fail("metrics: histogram %r has malformed bucket %r"
                     % (name, b))
                continue
            lo, hi, count = b
            if hi <= lo:
                fail("metrics: histogram %r bucket [%r,%r) is empty-"
                     "range" % (name, lo, hi))
            total += count
        if h.get("count") != total:
            fail("metrics: histogram %r count %r != bucket sum %r"
                 % (name, h.get("count"), total))

    # Cross-metric consistency: each level's hits+misses == accesses.
    for lvl in ("cache.l1", "cache.l2"):
        acc = counters.get(lvl + ".accesses")
        hits = counters.get(lvl + ".hits")
        misses = counters.get(lvl + ".misses")
        if None not in (acc, hits, misses) and hits + misses != acc:
            fail("metrics: %s hits %d + misses %d != accesses %d"
                 % (lvl, hits, misses, acc))


def check_bench(doc, schema, required_gauges):
    """Validate a benchmark's --metrics-out document.

    Bench documents share the metrics schema tag and the counter/gauge
    value rules but not the replay-session counter set, so only the
    gauges named on the command line are required.
    """
    if doc.get("schema") != schema["schema"]:
        fail("bench: schema tag is %r, want %r"
             % (doc.get("schema"), schema["schema"]))
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    if not isinstance(counters, dict) or not isinstance(gauges, dict):
        fail("bench: counters/gauges sections missing or malformed")
        return
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail("bench: counter %r is %r, want a non-negative "
                 "integer" % (name, value))
    for name, value in gauges.items():
        if not isinstance(value, numbers.Real):
            fail("bench: gauge %r is %r, want a number" % (name, value))
    for name in required_gauges:
        if name not in gauges:
            fail("bench: required gauge %r is missing" % name)
    # Every bench publishes its pass/fail tally; a zero means the
    # bench's own acceptance checks failed and CI must not trust the
    # numbers it exported.
    if counters.get("bench.checks_passed", 0) == 0:
        fail("bench: counter 'bench.checks_passed' missing or zero")


def check_trace(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("trace: no traceEvents array")
        return
    if not events:
        fail("trace: traceEvents is empty")
    names = set()
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail("trace: event %d lacks %r" % (i, field))
        ph = e.get("ph")
        if ph not in ("X", "i", "C"):
            fail("trace: event %d has unknown phase %r" % (i, ph))
        if ph == "X" and "dur" not in e:
            fail("trace: complete event %d lacks dur" % i)
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            fail("trace: instant event %d lacks scope" % i)
        if ph == "C" and "value" not in e.get("args", {}):
            fail("trace: counter event %d lacks args.value" % i)
        if isinstance(e.get("ts"), numbers.Real) and e["ts"] < 0:
            fail("trace: event %d has negative timestamp" % i)
        names.add(e.get("name"))
    # An instrumented replay must contain the replay-phase spans.
    for expected in ("replay.session", "replay.playback"):
        if expected not in names:
            fail("trace: expected span %r not present" % expected)


def check_timeseries(path, spec):
    """Validate a --timeseries-out JSONL file line by line."""
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail("timeseries: %s is empty" % path)
        return
    try:
        header = json.loads(lines[0])
    except ValueError as e:
        fail("timeseries: bad header line: %s" % e)
        return
    if header.get("schema") != spec["schema"]:
        fail("timeseries: schema tag is %r, want %r"
             % (header.get("schema"), spec["schema"]))
    for field in spec["required_header"]:
        if field not in header:
            fail("timeseries: header lacks %r" % field)
    if header.get("domain") not in spec["domains"]:
        fail("timeseries: unknown domain %r" % header.get("domain"))
    width = header.get("interval")
    if not isinstance(width, int) or width <= 0:
        fail("timeseries: interval %r is not a positive integer"
             % width)
        return

    int_cols = set(spec["integer_columns"])
    prev_idx = -1
    for n, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
        except ValueError as e:
            fail("timeseries: line %d is not JSON: %s" % (n, e))
            continue
        for col in spec["required_columns"]:
            if col not in row:
                fail("timeseries: line %d lacks column %r" % (n, col))
                continue
            v = row[col]
            if col in int_cols:
                if not isinstance(v, int) or v < 0:
                    fail("timeseries: line %d column %r is %r, want "
                         "a non-negative integer" % (n, col, v))
            elif not isinstance(v, numbers.Real):
                fail("timeseries: line %d column %r is %r, want a "
                     "number" % (n, col, v))
        idx = row.get("interval")
        if isinstance(idx, int):
            if idx <= prev_idx:
                fail("timeseries: line %d interval %d not ascending"
                     % (n, idx))
            prev_idx = idx
            if row.get("start") != idx * width:
                fail("timeseries: line %d start %r != interval %d * "
                     "width %d" % (n, row.get("start"), idx, width))
        refs = row.get("ram_refs", 0) + row.get("flash_refs", 0)
        kinds = (row.get("ifetch", 0) + row.get("dread", 0)
                 + row.get("dwrite", 0))
        if refs != kinds:
            fail("timeseries: line %d ram+flash %d != "
                 "ifetch+dread+dwrite %d" % (n, refs, kinds))
        frac = row.get("flash_fraction", 0)
        if refs and isinstance(frac, numbers.Real):
            want = row.get("flash_refs", 0) / refs
            if abs(frac - want) > 1e-9:
                fail("timeseries: line %d flash_fraction %r != %r"
                     % (n, frac, want))


def check_flightrec(doc, spec):
    """Validate a flight-recorder dump bundle."""
    for field in spec["required_fields"]:
        if field not in doc:
            fail("flightrec: missing field %r" % field)
    if doc.get("schema") != spec["schema"]:
        fail("flightrec: schema tag is %r, want %r"
             % (doc.get("schema"), spec["schema"]))
    reason = doc.get("reason")
    if not isinstance(reason, str) or not reason:
        fail("flightrec: reason %r is not a non-empty string"
             % reason)
    cap = doc.get("capacity")
    if not isinstance(cap, int) or cap <= 0 or cap & (cap - 1):
        fail("flightrec: capacity %r is not a positive power of two"
             % cap)
    threads = doc.get("threads")
    if not isinstance(threads, list):
        fail("flightrec: threads is not a list")
        return
    kinds = set(spec["entry_kinds"])
    total = 0
    for t, th in enumerate(threads):
        if not isinstance(th.get("tid"), int):
            fail("flightrec: thread %d has no integer tid" % t)
        entries = th.get("entries")
        if not isinstance(entries, list):
            fail("flightrec: thread %d has no entries list" % t)
            continue
        if isinstance(cap, int) and len(entries) > cap:
            fail("flightrec: thread %d holds %d entries > capacity %d"
                 % (t, len(entries), cap))
        total += len(entries)
        for i, e in enumerate(entries):
            if e.get("kind") not in kinds:
                fail("flightrec: thread %d entry %d has unknown kind "
                     "%r" % (t, i, e.get("kind")))
            for field in ("value", "cycle"):
                if not isinstance(e.get(field), int) \
                        or e.get(field) < 0:
                    fail("flightrec: thread %d entry %d field %r is "
                         "%r, want a non-negative integer"
                         % (t, i, field, e.get(field)))
    if total == 0:
        fail("flightrec: bundle holds no entries at all")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", nargs="?", default=None,
                    help="metrics JSON from --metrics-out")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "metrics_schema.json"))
    ap.add_argument("--bench", default=None,
                    help="check a benchmark --metrics-out document")
    ap.add_argument("--require-gauge", action="append", default=[],
                    metavar="NAME",
                    help="gauge that must be present in --bench doc "
                         "(repeatable)")
    ap.add_argument("--trace", default=None,
                    help="also check a --trace-out timeline")
    ap.add_argument("--timeseries", default=None,
                    help="also check a --timeseries-out JSONL series")
    ap.add_argument("--flightrec", default=None,
                    help="also check a flight-recorder dump bundle")
    args = ap.parse_args()
    if not (args.metrics or args.bench or args.trace or args.timeseries
            or args.flightrec):
        ap.error("nothing to check: give METRICS_JSON, --bench, "
                 "--trace, --timeseries, or --flightrec")

    with open(args.schema) as f:
        schema = json.load(f)
    checked = []
    if args.metrics:
        try:
            with open(args.metrics) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: cannot parse %s: %s" % (args.metrics, e))
            return 1
        check_metrics(doc, schema)
        checked.append(args.metrics)

    if args.bench:
        try:
            with open(args.bench) as f:
                bdoc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: cannot parse %s: %s" % (args.bench, e))
            return 1
        check_bench(bdoc, schema, args.require_gauge)
        checked.append(args.bench)

    if args.trace:
        try:
            with open(args.trace) as f:
                tdoc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: cannot parse %s: %s" % (args.trace, e))
            return 1
        check_trace(tdoc)
        checked.append(args.trace)

    if args.timeseries:
        try:
            check_timeseries(args.timeseries, schema["timeseries"])
        except OSError as e:
            print("FAIL: cannot read %s: %s" % (args.timeseries, e))
            return 1
        checked.append(args.timeseries)

    if args.flightrec:
        try:
            with open(args.flightrec) as f:
                fdoc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: cannot parse %s: %s" % (args.flightrec, e))
            return 1
        check_flightrec(fdoc, schema["flightrec"])
        checked.append(args.flightrec)

    if errors:
        for e in errors:
            print("FAIL:", e)
        print("%d check(s) failed" % len(errors))
        return 1
    print("ok: %s conform(s) to the palmtrace observability schemas"
          % ", ".join(checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())
