#!/usr/bin/env python3
"""Validate palmtrace observability output in CI.

Checks a metrics JSON document (written by ``--metrics-out``) against
the expectations in tools/metrics_schema.json, and optionally checks a
Chrome trace-event timeline (written by ``--trace-out``) for structural
sanity so it is guaranteed to load in Perfetto / chrome://tracing.

Usage:
    check_metrics_schema.py METRICS_JSON [--schema SCHEMA_JSON]
                            [--trace TRACE_JSON]

Exits 0 when every check passes, 1 otherwise, listing each failure.
Standard library only.
"""

import argparse
import json
import numbers
import os
import sys

errors = []


def fail(msg):
    errors.append(msg)


def check_metrics(doc, schema):
    if doc.get("schema") != schema["schema"]:
        fail("metrics: schema tag is %r, want %r"
             % (doc.get("schema"), schema["schema"]))
    for section in schema["required_sections"]:
        if not isinstance(doc.get(section), dict):
            fail("metrics: missing section %r" % section)
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    histograms = doc.get("histograms", {})

    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail("metrics: counter %r is %r, want a non-negative "
                 "integer" % (name, value))
    for name, value in gauges.items():
        if not isinstance(value, numbers.Real):
            fail("metrics: gauge %r is %r, want a number"
                 % (name, value))

    for name in schema["required_counters"]:
        if name not in counters:
            fail("metrics: required counter %r is missing" % name)
    for name in schema["required_nonzero"]:
        if counters.get(name, 0) == 0:
            fail("metrics: counter %r must be nonzero" % name)
    for name in schema["required_gauges"]:
        if name not in gauges:
            fail("metrics: required gauge %r is missing" % name)
    for name in schema["required_histograms"]:
        if name not in histograms:
            fail("metrics: required histogram %r is missing" % name)

    for name, h in histograms.items():
        for field in ("count", "sum", "min", "max", "mean", "stddev",
                      "buckets"):
            if field not in h:
                fail("metrics: histogram %r lacks %r" % (name, field))
        total = 0
        for b in h.get("buckets", []):
            if (not isinstance(b, list) or len(b) != 3
                    or not all(isinstance(x, numbers.Real)
                               for x in b)):
                fail("metrics: histogram %r has malformed bucket %r"
                     % (name, b))
                continue
            lo, hi, count = b
            if hi <= lo:
                fail("metrics: histogram %r bucket [%r,%r) is empty-"
                     "range" % (name, lo, hi))
            total += count
        if h.get("count") != total:
            fail("metrics: histogram %r count %r != bucket sum %r"
                 % (name, h.get("count"), total))

    # Cross-metric consistency: each level's hits+misses == accesses.
    for lvl in ("cache.l1", "cache.l2"):
        acc = counters.get(lvl + ".accesses")
        hits = counters.get(lvl + ".hits")
        misses = counters.get(lvl + ".misses")
        if None not in (acc, hits, misses) and hits + misses != acc:
            fail("metrics: %s hits %d + misses %d != accesses %d"
                 % (lvl, hits, misses, acc))


def check_trace(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("trace: no traceEvents array")
        return
    if not events:
        fail("trace: traceEvents is empty")
    names = set()
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail("trace: event %d lacks %r" % (i, field))
        ph = e.get("ph")
        if ph not in ("X", "i", "C"):
            fail("trace: event %d has unknown phase %r" % (i, ph))
        if ph == "X" and "dur" not in e:
            fail("trace: complete event %d lacks dur" % i)
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            fail("trace: instant event %d lacks scope" % i)
        if ph == "C" and "value" not in e.get("args", {}):
            fail("trace: counter event %d lacks args.value" % i)
        if isinstance(e.get("ts"), numbers.Real) and e["ts"] < 0:
            fail("trace: event %d has negative timestamp" % i)
        names.add(e.get("name"))
    # An instrumented replay must contain the replay-phase spans.
    for expected in ("replay.session", "replay.playback"):
        if expected not in names:
            fail("trace: expected span %r not present" % expected)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", help="metrics JSON from --metrics-out")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "metrics_schema.json"))
    ap.add_argument("--trace", default=None,
                    help="also check a --trace-out timeline")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    try:
        with open(args.metrics) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("FAIL: cannot parse %s: %s" % (args.metrics, e))
        return 1
    check_metrics(doc, schema)

    if args.trace:
        try:
            with open(args.trace) as f:
                tdoc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: cannot parse %s: %s" % (args.trace, e))
            return 1
        check_trace(tdoc)

    if errors:
        for e in errors:
            print("FAIL:", e)
        print("%d check(s) failed" % len(errors))
        return 1
    print("ok: %s conforms to %s%s"
          % (args.metrics, schema["schema"],
             " (+ trace %s)" % args.trace if args.trace else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
