/**
 * @file
 * End-to-end pipeline tests: collect a synthetic session, replay it,
 * and run the paper's two-fold validation (§3) — activity-log
 * correlation and final-state correlation — plus replay determinism
 * and the profiling outputs that feed the §4 cache study.
 */

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "hacks/logformat.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using core::PalmSimulator;
using core::ReplayConfig;
using core::ReplayResult;
using core::Session;
using hacks::LogType;

/** A small but representative session config for fast tests. */
workload::UserModelConfig
smallSession(u64 seed = 42)
{
    workload::UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 3'000;
    cfg.meanThinkTicks = 120;
    cfg.meanBurstActions = 3;
    return cfg;
}

/** Collects once and shares the session across tests in this file. */
const Session &
sharedSession()
{
    static const Session s = PalmSimulator::collect(smallSession());
    return s;
}

TEST(Pipeline, CollectionProducesRichLog)
{
    const Session &s = sharedSession();
    EXPECT_GT(s.log.records.size(), 20u);
    EXPECT_GT(s.log.countOf(LogType::PenPoint), 10u);
    EXPECT_GE(s.log.countOf(LogType::Key), 1u);
    // Monotonic non-decreasing timestamps.
    for (std::size_t i = 1; i < s.log.records.size(); ++i)
        EXPECT_GE(s.log.records[i].tick, s.log.records[i - 1].tick);
}

TEST(Pipeline, CollectionIsDeterministic)
{
    Session a = PalmSimulator::collect(smallSession(7));
    Session b = PalmSimulator::collect(smallSession(7));
    EXPECT_EQ(a.log.records, b.log.records);
    EXPECT_EQ(a.finalState.fingerprint(), b.finalState.fingerprint());
}

TEST(Pipeline, ReplayIsDeterministic)
{
    const Session &s = sharedSession();
    ReplayResult r1 = PalmSimulator::replaySession(s);
    ReplayResult r2 = PalmSimulator::replaySession(s);
    EXPECT_EQ(r1.finalState.fingerprint(),
              r2.finalState.fingerprint());
    EXPECT_EQ(r1.refs.totalRefs(), r2.refs.totalRefs());
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST(Pipeline, ActivityLogCorrelationPasses)
{
    const Session &s = sharedSession();
    ReplayResult r = PalmSimulator::replaySession(s);
    auto corr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_TRUE(corr.pass()) << corr.report();
    EXPECT_EQ(corr.payloadMismatches, 0u) << corr.report();
    EXPECT_EQ(corr.missingEvents, 0u) << corr.report();
    EXPECT_LE(corr.maxTickLag, 20) << corr.report();
}

TEST(Pipeline, FinalStateCorrelationPasses)
{
    const Session &s = sharedSession();
    ReplayResult r = PalmSimulator::replaySession(s);
    device::SnapshotBus handheld(s.finalState);
    device::SnapshotBus emulated(r.finalState);
    auto corr = validate::correlateStates(os::listDatabases(handheld),
                                          os::listDatabases(emulated));
    EXPECT_TRUE(corr.pass()) << corr.report();
    EXPECT_GE(corr.databasesCompared, 5u);
}

TEST(Pipeline, LogicalImportReproducesPaperBenignDiffs)
{
    // Importing (rather than bit-copying) the initial state zeroes
    // the creation/backup dates — the paper's §3.4 observation. The
    // replay must still work, and all resulting final-state
    // differences must classify as benign.
    const Session &s = sharedSession();
    ReplayConfig cfg;
    cfg.logicalImportMode = true;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);

    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_TRUE(logCorr.pass()) << logCorr.report();

    device::SnapshotBus handheld(s.finalState);
    device::SnapshotBus emulated(r.finalState);
    auto corr = validate::correlateStates(os::listDatabases(handheld),
                                          os::listDatabases(emulated));
    EXPECT_TRUE(corr.pass()) << corr.report();
    // And the benign differences the paper describes are present.
    bool sawDateDiff = false;
    for (const auto &d : corr.diffs)
        if (d.cls == validate::DiffClass::DateField)
            sawDateDiff = true;
    EXPECT_TRUE(sawDateDiff) << corr.report();
}

TEST(Pipeline, ReplayCollectsFlashDominatedReferences)
{
    const Session &s = sharedSession();
    ReplayResult r = PalmSimulator::replaySession(s);
    EXPECT_GT(r.refs.totalRefs(), 100'000u);
    // The OS lives in flash: flash must dominate (paper: ~2/3).
    EXPECT_GT(r.refs.flashFraction(), 0.5);
    EXPECT_LT(r.refs.flashFraction(), 0.9);
    // Eq 3 yields a no-cache access time between 1 and 3 cycles.
    double t = r.refs.avgMemCycles();
    EXPECT_GT(t, 2.0);
    EXPECT_LT(t, 2.9);
}

TEST(Pipeline, OpcodeHistogramCollected)
{
    const Session &s = sharedSession();
    trace::OpcodeHistogram hist;
    ReplayConfig cfg;
    cfg.opcodeSink = &hist;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);
    EXPECT_EQ(hist.totalOpcodes(), r.instructions);
    auto groups = hist.byGroup();
    ASSERT_FALSE(groups.empty());
    // MOVE should be among the most common groups on any 68k system.
    bool sawMove = false;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, groups.size());
         ++i) {
        if (groups[i].first == "move")
            sawMove = true;
    }
    EXPECT_TRUE(sawMove);
}

TEST(Pipeline, SessionSaveLoadRoundTrip)
{
    const Session &s = sharedSession();
    std::string base = testing::TempDir() + "/pt_session_test";
    ASSERT_TRUE(s.save(base));
    Session back;
    ASSERT_TRUE(Session::load(base, back));
    EXPECT_EQ(back.log.records, s.log.records);
    EXPECT_EQ(back.initialState.fingerprint(),
              s.initialState.fingerprint());
    EXPECT_EQ(back.finalState.fingerprint(),
              s.finalState.fingerprint());
    // A loaded session replays identically to the in-memory one.
    ReplayResult r1 = PalmSimulator::replaySession(s);
    ReplayResult r2 = PalmSimulator::replaySession(back);
    EXPECT_EQ(r1.finalState.fingerprint(),
              r2.finalState.fingerprint());
    for (const char *suffix : {".init.snap", ".log", ".final.snap"})
        std::remove((base + suffix).c_str());
}

TEST(Pipeline, JitteredReplayStillCorrelatesWithinBurstBound)
{
    const Session &s = sharedSession();
    ReplayConfig cfg;
    cfg.options.burstJitterTicks = 10; // paper saw bursts < 20 ticks
    ReplayResult r = PalmSimulator::replaySession(s, cfg);
    auto corr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_EQ(corr.payloadMismatches, 0u) << corr.report();
    EXPECT_LE(corr.maxTickLag, 20) << corr.report();
}

TEST(Pipeline, RandomSeedsReplayedFromQueue)
{
    // A session that launches Puzzle logs a nonzero SysRandom seed;
    // replay must apply it from the seed queue.
    workload::UserModelConfig cfg = smallSession(99);
    Session s = PalmSimulator::collect(cfg);
    if (s.log.countOf(LogType::Random) == 0)
        GTEST_SKIP() << "session did not call SysRandom";
    ReplayResult r = PalmSimulator::replaySession(s);
    u64 nonzeroSeeds = 0;
    for (const auto &rec : s.log.records)
        if (rec.type == LogType::Random && rec.extra != 0)
            ++nonzeroSeeds;
    EXPECT_EQ(r.replayStats.seedsApplied, nonzeroSeeds);
    EXPECT_EQ(r.replayStats.seedQueueUnderruns, 0u);
}

} // namespace
} // namespace pt
