/**
 * @file
 * Trace-module tests: Dinero format round-trips and parsing edge
 * cases, trace buffers, tee sinks, reference counters, and the opcode
 * histogram/grouping.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "m68k/codebuilder.h"
#include "trace/dinero.h"
#include "trace/energy.h"
#include "trace/memtrace.h"
#include "trace/packedtrace.h"
#include "trace/tracediff.h"

namespace pt
{
namespace
{

using trace::DinLabel;
using trace::OpcodeHistogram;
using trace::RefCounter;
using trace::TeeSink;
using trace::TraceBuffer;

TEST(Dinero, ParsesClassicFormat)
{
    const char *text =
        "# a comment\n"
        "2 400100\n"
        "0 10aB4\n"
        "1 7fff0000\n"
        "\n"
        "bogus line\n"
        "2 400104\n";
    std::vector<std::pair<Addr, u8>> out;
    s64 n = trace::readDineroText(
        text, [&](Addr a, u8 l) { out.push_back({a, l}); });
    ASSERT_EQ(n, 4);
    EXPECT_EQ(out[0], (std::pair<Addr, u8>{0x400100, DinLabel::Fetch}));
    EXPECT_EQ(out[1], (std::pair<Addr, u8>{0x10AB4, DinLabel::Read}));
    EXPECT_EQ(out[2],
              (std::pair<Addr, u8>{0x7FFF0000, DinLabel::Write}));
    EXPECT_EQ(out[3], (std::pair<Addr, u8>{0x400104, DinLabel::Fetch}));
}

TEST(Dinero, RejectsBadLabels)
{
    s64 n = trace::readDineroText("7 1234\n-1 10\n",
                                  [](Addr, u8) { FAIL(); });
    EXPECT_EQ(n, 0);
}

TEST(Dinero, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/pt_din_test.din";
    {
        trace::DineroWriter w(path);
        ASSERT_TRUE(w.ok());
        w.emit(0x1000, DinLabel::Fetch);
        w.emit(0x2004, DinLabel::Read);
        w.emit(0x3008, DinLabel::Write);
        EXPECT_EQ(w.count(), 3u);
    }
    std::vector<Addr> addrs;
    s64 n = trace::readDineroFile(
        path, [&](Addr a, u8) { addrs.push_back(a); });
    EXPECT_EQ(n, 3);
    EXPECT_EQ(addrs, (std::vector<Addr>{0x1000, 0x2004, 0x3008}));
    std::remove(path.c_str());
}

TEST(Dinero, MissingFileReturnsError)
{
    s64 n = trace::readDineroFile("/nonexistent/trace.din",
                                  [](Addr, u8) {});
    EXPECT_EQ(n, -1);
}

TEST(RefCounterTest, SplitsByClassAndKind)
{
    RefCounter c;
    c.onRef(0x100, m68k::AccessKind::Fetch, device::RefClass::Ram);
    c.onRef(0x100, m68k::AccessKind::Write, device::RefClass::Ram);
    c.onRef(0x10C00000, m68k::AccessKind::Fetch,
            device::RefClass::Flash);
    c.onRef(0x10C00000, m68k::AccessKind::Read,
            device::RefClass::Flash);
    c.onRef(0xFFFFF000, m68k::AccessKind::Read,
            device::RefClass::Mmio); // not counted
    EXPECT_EQ(c.ramRefs(), 2u);
    EXPECT_EQ(c.flashRefs(), 2u);
    EXPECT_EQ(c.totalRefs(), 4u);
    EXPECT_EQ(c.ramFetch, 1u);
    EXPECT_EQ(c.ramWrite, 1u);
    EXPECT_EQ(c.flashFetch, 1u);
    EXPECT_EQ(c.flashRead, 1u);
    EXPECT_DOUBLE_EQ(c.flashFraction(), 0.5);
    EXPECT_DOUBLE_EQ(c.avgMemCycles(), 2.0); // (1+3)/2
}

TEST(TraceBufferTest, CapacityBoundsAndDropCount)
{
    TraceBuffer buf(3);
    for (int i = 0; i < 5; ++i)
        buf.onRef(static_cast<Addr>(i), m68k::AccessKind::Read,
                  device::RefClass::Ram);
    EXPECT_EQ(buf.records().size(), 3u);
    EXPECT_EQ(buf.droppedCount(), 2u);
}

TEST(TraceBufferTest, FileRoundTrip)
{
    TraceBuffer buf;
    buf.onRef(0x1234, m68k::AccessKind::Fetch, device::RefClass::Ram);
    buf.onRef(0x10C00010, m68k::AccessKind::Write,
              device::RefClass::Flash);
    std::string path = testing::TempDir() + "/pt_trace_test.bin";
    ASSERT_TRUE(buf.save(path));
    TraceBuffer back;
    ASSERT_TRUE(TraceBuffer::load(path, back).ok());
    ASSERT_EQ(back.records().size(), 2u);
    EXPECT_EQ(back.records()[0].addr, 0x1234u);
    EXPECT_EQ(back.records()[0].cls, 0);
    EXPECT_EQ(back.records()[1].addr, 0x10C00010u);
    EXPECT_EQ(back.records()[1].cls, 1);
    std::remove(path.c_str());
}

TEST(TeeSinkTest, FansOut)
{
    RefCounter a, b;
    TeeSink tee;
    tee.add(&a);
    tee.add(&b);
    tee.onRef(0x100, m68k::AccessKind::Read, device::RefClass::Ram);
    EXPECT_EQ(a.ramRefs(), 1u);
    EXPECT_EQ(b.ramRefs(), 1u);
}

TEST(OpcodeHistogramTest, CountsAndGroups)
{
    OpcodeHistogram h;
    h.onOpcode(0x4E71, 0); // nop
    h.onOpcode(0x4E71, 2);
    h.onOpcode(0x2040, 4); // movea.l d0,a0
    EXPECT_EQ(h.totalOpcodes(), 3u);
    EXPECT_EQ(h.count(0x4E71), 2u);
    auto groups = h.byGroup();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].first, "nop");
    EXPECT_EQ(groups[0].second, 2u);
    EXPECT_EQ(groups[1].first, "movea");
}

TEST(OpcodeGroupTest, ClassifiesRepresentativeOpcodes)
{
    EXPECT_EQ(trace::opcodeGroup(0x4E75), "rts");
    EXPECT_EQ(trace::opcodeGroup(0x4E40), "trap");
    EXPECT_EQ(trace::opcodeGroup(0x6000), "bra");
    EXPECT_EQ(trace::opcodeGroup(0x6100), "bsr");
    EXPECT_EQ(trace::opcodeGroup(0x6700), "bcc");
    EXPECT_EQ(trace::opcodeGroup(0x7001), "moveq");
    EXPECT_EQ(trace::opcodeGroup(0xD081), "add");
    EXPECT_EQ(trace::opcodeGroup(0x9081), "sub");
    EXPECT_EQ(trace::opcodeGroup(0xC0C1), "mul");
    EXPECT_EQ(trace::opcodeGroup(0x80C1), "div");
    EXPECT_EQ(trace::opcodeGroup(0xE348), "shift");
    EXPECT_EQ(trace::opcodeGroup(0x51C8), "dbcc");
    EXPECT_EQ(trace::opcodeGroup(0x5280), "addq");
    EXPECT_EQ(trace::opcodeGroup(0x0C40), "cmpi");
}

TEST(InstrEnergy, ClassifiesRepresentativeOpcodes)
{
    using trace::classifyOpcode;
    using trace::InstrClass;
    EXPECT_EQ(classifyOpcode(0x2040), InstrClass::Move);   // movea
    EXPECT_EQ(classifyOpcode(0x7001), InstrClass::Move);   // moveq
    EXPECT_EQ(classifyOpcode(0xD081), InstrClass::Alu);    // add.l
    EXPECT_EQ(classifyOpcode(0x0640), InstrClass::Alu);    // addi.w
    EXPECT_EQ(classifyOpcode(0xC0C1), InstrClass::MulDiv); // mulu
    EXPECT_EQ(classifyOpcode(0x80C1), InstrClass::MulDiv); // divu
    EXPECT_EQ(classifyOpcode(0xE348), InstrClass::Shift);  // lsl
    EXPECT_EQ(classifyOpcode(0x6700), InstrClass::Branch); // beq
    EXPECT_EQ(classifyOpcode(0x51C8), InstrClass::Branch); // dbf
    EXPECT_EQ(classifyOpcode(0x4E75), InstrClass::Control);// rts
    EXPECT_EQ(classifyOpcode(0x4E4F), InstrClass::Control);// trap
    EXPECT_EQ(classifyOpcode(0x41C0), InstrClass::Move);   // lea
    EXPECT_EQ(classifyOpcode(0x4E71), InstrClass::Misc);   // nop
}

TEST(InstrEnergy, ChargesPerClass)
{
    trace::InstructionEnergyModel m;
    for (int i = 0; i < 1000; ++i)
        m.onOpcode(0xD081, 0); // alu: 1.0 nJ each
    m.onOpcode(0x80C1, 0);     // one divu: 9.0 nJ
    EXPECT_EQ(m.totalInstructions(), 1001u);
    EXPECT_NEAR(m.totalMj(), (1000 * 1.0 + 9.0) * 1e-6, 1e-12);
    auto rows = m.breakdown();
    double shareSum = 0;
    for (const auto &r : rows)
        shareSum += r.share;
    EXPECT_NEAR(shareSum, 1.0, 1e-9);
}

TEST(InstrEnergy, ClassEnergyOverride)
{
    trace::InstructionEnergyModel m;
    m.setClassEnergy(trace::InstrClass::Alu, 5.0);
    m.onOpcode(0xD081, 0);
    EXPECT_NEAR(m.totalMj(), 5.0e-6, 1e-15);
}

// ---------------------------------------------------------------------
// diffTraces: the three-outcome contract the CI exit codes map onto

namespace diffutil
{

std::string
diffTmp(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
writePttr(const std::string &name, const std::vector<trace::TraceRecord> &recs)
{
    TraceBuffer buf;
    for (const auto &r : recs)
        buf.onRef(r.addr,
                  static_cast<m68k::AccessKind>(r.kind),
                  r.cls ? device::RefClass::Flash
                        : device::RefClass::Ram);
    std::string path = diffTmp(name);
    EXPECT_TRUE(buf.save(path));
    return path;
}

std::string
writePacked(const std::string &name,
            const std::vector<trace::TraceRecord> &recs, u32 capacity)
{
    std::string path = diffTmp(name);
    trace::PackedTraceWriter w(path, capacity);
    for (const auto &r : recs)
        w.add(r);
    EXPECT_TRUE(w.close());
    return path;
}

std::vector<trace::TraceRecord>
sampleRecords(std::size_t n)
{
    std::vector<trace::TraceRecord> recs;
    for (std::size_t i = 0; i < n; ++i) {
        recs.push_back({static_cast<Addr>(0x1000 + i * 4),
                        static_cast<u8>(i % 3),
                        static_cast<u8>(i % 2)});
    }
    return recs;
}

} // namespace diffutil

TEST(TraceDiff, IdenticalAcrossFormats)
{
    auto recs = diffutil::sampleRecords(300);
    std::string pttr = diffutil::writePttr("diff_a.pttr", recs);
    std::string packed = diffutil::writePacked("diff_a.ptpk", recs, 64);

    auto same = trace::diffTraces(pttr, pttr);
    EXPECT_EQ(same.outcome, trace::DiffOutcome::Identical);
    EXPECT_EQ(same.records, 300u);

    // Same record sequence in different containers is identical: the
    // diff compares records, not bytes.
    auto cross = trace::diffTraces(pttr, packed);
    EXPECT_EQ(cross.outcome, trace::DiffOutcome::Identical);
    EXPECT_EQ(cross.records, 300u);
}

TEST(TraceDiff, DivergenceAndLengthMismatchDiffer)
{
    auto recs = diffutil::sampleRecords(100);
    std::string a = diffutil::writePttr("diff_b1.pttr", recs);
    recs[57].addr ^= 4;
    std::string b = diffutil::writePttr("diff_b2.pttr", recs);

    auto res = trace::diffTraces(a, b);
    EXPECT_EQ(res.outcome, trace::DiffOutcome::Differ);
    EXPECT_EQ(res.records, 57u) << "stops at the first divergence";
    EXPECT_FALSE(res.detail.empty());

    // A strict prefix differs too (trailing records are a divergence).
    auto shorter = diffutil::sampleRecords(100);
    shorter.resize(80);
    std::string c = diffutil::writePttr("diff_b3.pttr", shorter);
    auto pre = trace::diffTraces(a, c);
    EXPECT_EQ(pre.outcome, trace::DiffOutcome::Differ);
    EXPECT_EQ(pre.records, 80u);
}

TEST(TraceDiff, UnreadableAndCorruptAreErrors)
{
    auto recs = diffutil::sampleRecords(20);
    std::string good = diffutil::writePttr("diff_c.pttr", recs);

    // Missing file.
    auto missing =
        trace::diffTraces(good, diffutil::diffTmp("diff_missing.pttr"));
    EXPECT_EQ(missing.outcome, trace::DiffOutcome::Error);
    EXPECT_FALSE(missing.detail.empty());

    // Truncated PTTR: header claims more records than the payload
    // holds.
    std::string bad = diffutil::diffTmp("diff_trunc.pttr");
    {
        std::FILE *src = std::fopen(good.c_str(), "rb");
        ASSERT_NE(src, nullptr);
        std::vector<unsigned char> bytes(64);
        std::size_t n = std::fread(bytes.data(), 1, bytes.size(), src);
        std::fclose(src);
        ASSERT_GT(n, 8u);
        std::FILE *dst = std::fopen(bad.c_str(), "wb");
        ASSERT_NE(dst, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, n - 3, dst), n - 3);
        std::fclose(dst);
    }
    auto corrupt = trace::diffTraces(good, bad);
    EXPECT_EQ(corrupt.outcome, trace::DiffOutcome::Error);

    // Error wins over Differ: comparing two unreadable files is an
    // error, not a difference.
    auto both = trace::diffTraces(bad, bad);
    EXPECT_EQ(both.outcome, trace::DiffOutcome::Error);
}

} // namespace
} // namespace pt
