/**
 * @file
 * Supervised-job tests: journal round-trip and torn-tail contracts,
 * the supervisor's retry/quarantine/watchdog/cancel behaviors, and
 * the tentpole theorem — a resumed job's output is byte-identical to
 * an uninterrupted run's (epoch-parallel replay, packed cache sweep,
 * batched session replay).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/fnv.h"
#include "cache/cache.h"
#include "core/palmsim.h"
#include "epoch/epochrunner.h"
#include "super/jobs.h"
#include "super/journal.h"
#include "super/supervisor.h"
#include "trace/packedtrace.h"
#include "workload/sessionrunner.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

void
appendRawBytes(const std::string &path, const std::vector<u8> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

super::JobSpec
sampleSpec()
{
    super::JobSpec spec;
    spec.kind = super::JobKind::PackedSweep;
    spec.sessionPath = "trace.ptpk";
    spec.outPath = "sweep.csv";
    spec.blockCapacity = 4096;
    spec.totalItems = 4;
    spec.maxAttempts = 2;
    spec.deadlineMs = 1500;
    spec.backoffSeed = 7;
    spec.bindFingerprint = 0xABCDEF0123456789ull;
    spec.jobs = 2;
    spec.extra = {1, 2, 3, 4, 5};
    return spec;
}

// ---------------------------------------------------------------------
// Backoff

TEST(Backoff, DeterministicSeededExponential)
{
    // Pure function of (base, seed, item, attempt).
    u64 a = super::backoffDelayMs(25, 1, 3, 2);
    EXPECT_EQ(a, super::backoffDelayMs(25, 1, 3, 2));

    // Exponential base part plus jitter strictly below base.
    for (u32 attempt = 0; attempt < 6; ++attempt) {
        u64 d = super::backoffDelayMs(25, 9, 0, attempt);
        EXPECT_GE(d, u64{25} << attempt);
        EXPECT_LT(d, (u64{25} << attempt) + 25);
    }

    // Different seeds and items move the jitter.
    EXPECT_EQ(super::backoffDelayMs(0, 1, 0, 4), 0u);

    // The exponent is capped so huge attempt numbers can't overflow
    // into a near-infinite wait.
    EXPECT_EQ(super::backoffDelayMs(25, 1, 0, 40) & ~u64{31},
              super::backoffDelayMs(25, 1, 0, 10) & ~u64{31});
}

// ---------------------------------------------------------------------
// Journal

TEST(Journal, RoundTripPreservesEverything)
{
    const std::string path = tmpFile("journal_rt.ptjl");
    super::JobSpec spec = sampleSpec();

    super::JournalWriter w;
    ASSERT_TRUE(w.open(path, spec));
    ASSERT_TRUE(w.appendItem({0, super::ItemState::Running, 0,
                              {}, 0, {}, {}}));
    ASSERT_TRUE(w.appendItem({0, super::ItemState::Done, 0,
                              "shard.0", 0x1111, {}, {9, 9, 9}}));
    ASSERT_TRUE(w.appendItem({1, super::ItemState::Failed, 0,
                              {}, 0, "io fault", {}}));
    ASSERT_TRUE(w.appendItem({1, super::ItemState::Quarantined, 1,
                              {}, 0, "io fault", {}}));
    ASSERT_TRUE(w.appendFooter(
        {super::JobStatus::Degraded, 0x2222, "one bad item"}));
    w.close();

    super::JournalData data;
    LoadResult res = super::loadJournal(path, data);
    ASSERT_TRUE(res.ok()) << res.message();

    EXPECT_EQ(data.spec.kind, spec.kind);
    EXPECT_EQ(data.spec.sessionPath, spec.sessionPath);
    EXPECT_EQ(data.spec.outPath, spec.outPath);
    EXPECT_EQ(data.spec.totalItems, spec.totalItems);
    EXPECT_EQ(data.spec.maxAttempts, spec.maxAttempts);
    EXPECT_EQ(data.spec.deadlineMs, spec.deadlineMs);
    EXPECT_EQ(data.spec.backoffSeed, spec.backoffSeed);
    EXPECT_EQ(data.spec.bindFingerprint, spec.bindFingerprint);
    EXPECT_EQ(data.spec.extra, spec.extra);

    ASSERT_EQ(data.records.size(), 4u);
    EXPECT_EQ(data.records[1].state, super::ItemState::Done);
    EXPECT_EQ(data.records[1].artifact, "shard.0");
    EXPECT_EQ(data.records[1].artifactFnv, 0x1111u);
    EXPECT_EQ(data.records[1].blob, (std::vector<u8>{9, 9, 9}));
    EXPECT_EQ(data.records[3].error, "io fault");

    ASSERT_TRUE(data.hasFooter);
    EXPECT_EQ(data.footer.status, super::JobStatus::Degraded);
    EXPECT_EQ(data.footer.outFnv, 0x2222u);
    EXPECT_EQ(data.footer.note, "one bad item");
    EXPECT_EQ(data.truncatedBytes, 0u);

    // latestPerItem: last record per item wins, untouched items are
    // Pending.
    auto latest = data.latestPerItem();
    ASSERT_EQ(latest.size(), 4u);
    EXPECT_EQ(latest[0].state, super::ItemState::Done);
    EXPECT_EQ(latest[1].state, super::ItemState::Quarantined);
    EXPECT_EQ(latest[2].state, super::ItemState::Pending);
    EXPECT_EQ(latest[3].state, super::ItemState::Pending);
}

TEST(Journal, TornTailDroppedThenAppendResumes)
{
    const std::string path = tmpFile("journal_torn.ptjl");
    super::JobSpec spec = sampleSpec();
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(path, spec));
        ASSERT_TRUE(w.appendItem({0, super::ItemState::Done, 0,
                                  "a", 1, {}, {}}));
    }

    // A crash mid-append: half a record frame lands at the tail.
    BinWriter torn;
    torn.put32(super::kJournalRecordMagic);
    torn.put32(2);
    appendRawBytes(path, torn.takeBytes());

    super::JournalData data;
    LoadResult res = super::loadJournal(path, data);
    ASSERT_TRUE(res.ok()) << res.message();
    ASSERT_EQ(data.records.size(), 1u);
    EXPECT_FALSE(data.hasFooter);
    EXPECT_GT(data.truncatedBytes, 0u);

    // openAppend truncates the torn tail and appends on the valid
    // boundary; the reloaded journal is whole again.
    {
        super::JournalWriter w;
        std::string err;
        ASSERT_TRUE(w.openAppend(path, data.validBytes, &err)) << err;
        ASSERT_TRUE(w.appendItem({1, super::ItemState::Done, 0,
                                  "b", 2, {}, {}}));
        ASSERT_TRUE(w.appendFooter(
            {super::JobStatus::Complete, 3, {}}));
    }
    super::JournalData again;
    res = super::loadJournal(path, again);
    ASSERT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(again.records.size(), 2u);
    EXPECT_TRUE(again.hasFooter);
    EXPECT_EQ(again.truncatedBytes, 0u);
}

TEST(Journal, ChecksumMismatchTreatedAsTornTail)
{
    const std::string path = tmpFile("journal_sum.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(path, sampleSpec()));
        ASSERT_TRUE(w.appendItem({0, super::ItemState::Done, 0,
                                  "a", 1, {}, {}}));
    }
    // Flip the last payload byte: the frame is intact but the
    // checksum no longer matches — by the append-flush ordering that
    // can only be a torn append, so the loader drops the record.
    std::vector<u8> bytes = readFileBytes(path);
    ASSERT_FALSE(bytes.empty());
    bytes.back() ^= 0xFF;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);

    super::JournalData data;
    LoadResult res = super::loadJournal(path, data);
    ASSERT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(data.records.size(), 0u);
    EXPECT_GT(data.truncatedBytes, 0u);
}

TEST(Journal, StructurallyCorruptRecordRejected)
{
    const std::string path = tmpFile("journal_bad.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(path, sampleSpec()));
    }
    // A checksum-valid item record whose state byte is garbage is
    // real corruption, not a torn append — the loader must refuse.
    BinWriter payload;
    payload.put64(0);  // item
    payload.put8(99);  // invalid state
    payload.put32(0);  // attempt
    payload.putString("");
    payload.put64(0);
    payload.putString("");
    payload.put32(0);
    std::vector<u8> p = payload.takeBytes();
    BinWriter rec;
    rec.put32(super::kJournalRecordMagic);
    rec.put32(2); // item record
    rec.put64(p.size());
    rec.put64(fnv64(p.data(), p.size()));
    rec.putBytes(p.data(), p.size());
    appendRawBytes(path, rec.takeBytes());

    super::JournalData data;
    LoadResult res = super::loadJournal(path, data);
    EXPECT_FALSE(res.ok());
}

TEST(Journal, NotAJournalRejected)
{
    const std::string path = tmpFile("journal_not.ptjl");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a journal", f);
    std::fclose(f);
    super::JournalData data;
    EXPECT_FALSE(super::loadJournal(path, data).ok());
    EXPECT_FALSE(super::loadJournal(tmpFile("nope.ptjl"), data).ok());
}

// ---------------------------------------------------------------------
// Supervisor

TEST(Supervisor, AllItemsSucceed)
{
    super::SuperOptions opts;
    opts.jobs = 4;
    std::atomic<u64> calls{0};
    auto res = super::superviseItems(
        16,
        [&](u64, CancelToken &tok) {
            tok.beat();
            calls.fetch_add(1);
            super::ItemOutcome out;
            out.ok = true;
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.degraded());
    EXPECT_EQ(res.itemsDone, 16u);
    EXPECT_EQ(res.retries, 0u);
    EXPECT_EQ(calls.load(), 16u);
}

TEST(Supervisor, TransientFailureRetriesThenSucceeds)
{
    super::SuperOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 3;
    opts.backoffBaseMs = 1;
    std::vector<std::atomic<int>> attempts(8);
    auto res = super::superviseItems(
        8,
        [&](u64 i, CancelToken &) {
            super::ItemOutcome out;
            // Every odd item fails its first attempt.
            if (attempts[i].fetch_add(1) == 0 && (i & 1)) {
                out.error = "transient";
                return out;
            }
            out.ok = true;
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.itemsDone, 8u);
    EXPECT_EQ(res.retries, 4u);
    EXPECT_EQ(res.itemsQuarantined, 0u);
}

TEST(Supervisor, PersistentFailureQuarantinesAndDegrades)
{
    super::SuperOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 1;
    auto res = super::superviseItems(
        4,
        [&](u64 i, CancelToken &) {
            super::ItemOutcome out;
            out.ok = i != 2;
            if (!out.ok)
                out.error = "broken forever";
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok) << "quarantine degrades, it does not fail";
    EXPECT_TRUE(res.degraded());
    EXPECT_EQ(res.itemsDone, 3u);
    EXPECT_EQ(res.itemsQuarantined, 1u);
    ASSERT_EQ(res.quarantined.size(), 4u);
    EXPECT_TRUE(res.quarantined[2]);
    EXPECT_NE(res.firstError.find("broken forever"),
              std::string::npos);
}

TEST(Supervisor, WorkerExceptionsBecomeFailures)
{
    super::SuperOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 1;
    auto res = super::superviseItems(
        3,
        [&](u64 i, CancelToken &) -> super::ItemOutcome {
            if (i == 0)
                throw std::runtime_error("chaos");
            if (i == 1)
                throw std::bad_alloc();
            super::ItemOutcome out;
            out.ok = true;
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.itemsDone, 1u);
    EXPECT_EQ(res.itemsQuarantined, 2u);
    EXPECT_TRUE(res.outcomes[0].error.find("chaos") !=
                std::string::npos)
        << res.outcomes[0].error;
    EXPECT_EQ(res.outcomes[1].error, "allocation failure");
}

TEST(Supervisor, SkipListShortCircuitsItems)
{
    super::SuperOptions opts;
    opts.jobs = 2;
    opts.skip = {true, false, true, false};
    std::atomic<u64> ran{0};
    auto res = super::superviseItems(
        4,
        [&](u64 i, CancelToken &) {
            EXPECT_TRUE(i == 1 || i == 3) << "skipped item ran";
            ran.fetch_add(1);
            super::ItemOutcome out;
            out.ok = true;
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.itemsDone, 2u);
    EXPECT_EQ(res.itemsSkipped, 2u);
    EXPECT_EQ(ran.load(), 2u);
}

TEST(Supervisor, WatchdogCancelsBeatlessItem)
{
    super::SuperOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 1;
    opts.deadlineMs = 40;
    opts.watchdogPollMs = 10;
    auto res = super::superviseItems(
        2,
        [&](u64 i, CancelToken &tok) {
            super::ItemOutcome out;
            if (i == 0) {
                out.ok = true;
                return out;
            }
            // Item 1 wedges: no beats, only a cancel poll. Bounded so
            // a broken watchdog fails the test instead of hanging it.
            for (int spin = 0; spin < 5000; ++spin) {
                if (tok.cancelled())
                    return out; // ok=false, error filled by caller
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
            out.error = "watchdog never fired";
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.degraded());
    EXPECT_GE(res.watchdogFires, 1u);
    EXPECT_EQ(res.itemsQuarantined, 1u);
    EXPECT_NE(res.outcomes[1].error.find("deadline exceeded"),
              std::string::npos)
        << res.outcomes[1].error;
}

TEST(Supervisor, BeatingItemOutlivesItsDeadline)
{
    // A slow item that keeps beating must NOT be shot: the deadline
    // measures stall, not total runtime.
    super::SuperOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 1;
    opts.deadlineMs = 30;
    opts.watchdogPollMs = 5;
    auto res = super::superviseItems(
        1,
        [&](u64, CancelToken &tok) {
            // Runs ~6x the deadline, beating the whole way.
            for (int step = 0; step < 60; ++step) {
                tok.beat();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(3));
            }
            super::ItemOutcome out;
            out.ok = !tok.cancelled();
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.itemsDone, 1u);
    EXPECT_EQ(res.watchdogFires, 0u);
}

TEST(Supervisor, GlobalCancelInterruptsResumably)
{
    CancelToken stop;
    super::SuperOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 3;
    opts.globalCancel = &stop;

    const std::string path = tmpFile("journal_int.ptjl");
    super::JournalWriter w;
    super::JobSpec spec = sampleSpec();
    spec.totalItems = 4;
    ASSERT_TRUE(w.open(path, spec));
    opts.journal = &w;

    auto res = super::superviseItems(
        4,
        [&](u64 i, CancelToken &) {
            super::ItemOutcome out;
            if (i >= 1) {
                stop.requestCancel();
                return out; // not ok: caller marks it interrupted
            }
            out.ok = true;
            return out;
        },
        opts);
    w.close();
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.interrupted);

    // The journal stays resumable: interrupted items are Failed (re-
    // runnable), never Quarantined, and no footer was written.
    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(path, data).ok());
    EXPECT_FALSE(data.hasFooter);
    for (const auto &rec : data.latestPerItem())
        EXPECT_NE(rec.state, super::ItemState::Quarantined);
}

TEST(Supervisor, JournalFailureDoesNotFailTheJob)
{
    // A journal that cannot be written degrades to a counter, never
    // to a dead job.
    super::JournalWriter w;
    std::string err;
    EXPECT_FALSE(
        w.open("/nonexistent-dir-xyz/j.ptjl", sampleSpec(), &err));
    EXPECT_FALSE(w.ok());

    super::SuperOptions opts;
    opts.jobs = 2;
    opts.journal = &w;
    auto res = super::superviseItems(
        4,
        [&](u64, CancelToken &) {
            super::ItemOutcome out;
            out.ok = true;
            return out;
        },
        opts);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.itemsDone, 4u);
    EXPECT_GT(res.journalWriteFailures, 0u);
}

// ---------------------------------------------------------------------
// Supervised jobs: resume is byte-identical

class EpochJobTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::UserModelConfig cfg;
        cfg.seed = 7;
        cfg.interactions = 4;
        cfg.meanIdleTicks = 2'000;
        session = new core::Session(core::PalmSimulator::collect(cfg));
        sessionBase = tmpFile("super_session");
        ASSERT_TRUE(session->save(sessionBase));

        epoch::ScanOptions so;
        so.epochs = 3;
        auto scan = epoch::scanSession(*session, so);
        ASSERT_TRUE(scan.ok) << scan.error;
        plan = new epoch::EpochPlan(scan.plan);
        planPath = tmpFile("super_plan.ptep");
        ASSERT_TRUE(plan->save(planPath));
    }

    static void
    TearDownTestSuite()
    {
        delete session;
        session = nullptr;
        delete plan;
        plan = nullptr;
    }

    static core::Session *session;
    static epoch::EpochPlan *plan;
    static std::string sessionBase;
    static std::string planPath;
};

core::Session *EpochJobTest::session = nullptr;
epoch::EpochPlan *EpochJobTest::plan = nullptr;
std::string EpochJobTest::sessionBase;
std::string EpochJobTest::planPath;

TEST_F(EpochJobTest, ResumedRunIsByteIdentical)
{
    const std::string out = tmpFile("super_epoch.ptpk");
    const std::string j1 = tmpFile("super_epoch_full.ptjl");

    super::JobOptions jo;
    jo.jobs = 2;
    jo.journalPath = j1;
    jo.keepShards = true; // leave shards for the crafted resume
    auto full = super::runEpochJob(*session, sessionBase, *plan,
                                   planPath, out, jo);
    ASSERT_TRUE(full.ok) << full.error;
    EXPECT_GT(full.refs, 0u);
    std::vector<u8> refBytes = readFileBytes(out);
    ASSERT_FALSE(refBytes.empty());

    // Craft the journal a crash after two Done items would leave:
    // same spec, the first two Done records, no footer.
    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    ASSERT_GE(data.spec.totalItems, 3u);
    const std::string j2 = tmpFile("super_epoch_partial.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
        for (const auto &rec : data.records) {
            if (rec.state == super::ItemState::Done && rec.item < 2) {
                ASSERT_TRUE(w.appendItem(rec));
            }
        }
    }
    std::remove(out.c_str());

    auto resumed = super::resumeJob(j2, super::JobOptions{});
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.super.itemsSkipped, 2u);
    EXPECT_EQ(resumed.super.itemsDone, data.spec.totalItems - 2);
    EXPECT_EQ(readFileBytes(out), refBytes);
    EXPECT_EQ(resumed.outFnv, full.outFnv);

    // The finalized journal reports nothing to do.
    auto done = super::resumeJob(j1, super::JobOptions{});
    EXPECT_TRUE(done.ok);
    EXPECT_TRUE(done.nothingToDo);
    EXPECT_EQ(done.outFnv, full.outFnv);
}

TEST_F(EpochJobTest, ResumeRefusesSwappedInputs)
{
    const std::string out = tmpFile("super_epoch_bind.ptpk");
    const std::string j1 = tmpFile("super_epoch_bind.ptjl");
    super::JobOptions jo;
    jo.jobs = 1;
    jo.journalPath = j1;
    auto full = super::runEpochJob(*session, sessionBase, *plan,
                                   planPath, out, jo);
    ASSERT_TRUE(full.ok) << full.error;

    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    data.spec.bindFingerprint ^= 1; // "different plan"
    const std::string j2 = tmpFile("super_epoch_bind2.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
    }
    auto resumed = super::resumeJob(j2, super::JobOptions{});
    EXPECT_FALSE(resumed.ok);
    EXPECT_FALSE(resumed.error.empty());
}

std::string
writeSyntheticPacked(const std::string &path, u64 records, u64 seed)
{
    trace::PackedTraceWriter w(path, 512);
    u64 x = seed ? seed : 1;
    for (u64 i = 0; i < records; ++i) {
        // xorshift64* — cheap deterministic address stream.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        u64 v = x * 0x2545F4914F6CDD1Dull;
        w.add(static_cast<u32>(v), static_cast<u8>(v >> 32) % 3,
              static_cast<u8>(v >> 40) % 2);
    }
    EXPECT_TRUE(w.close());
    return path;
}

std::vector<cache::CacheConfig>
sweepConfigs()
{
    std::vector<cache::CacheConfig> configs;
    for (u32 size : {256u, 512u, 1024u, 2048u}) {
        for (u32 assoc : {1u, 2u}) {
            cache::CacheConfig c;
            c.sizeBytes = size;
            c.lineBytes = 16;
            c.assoc = assoc;
            configs.push_back(c);
        }
    }
    return configs;
}

TEST(SweepJob, ResumedRunIsByteIdentical)
{
    const std::string trace =
        writeSyntheticPacked(tmpFile("super_sweep.ptpk"), 3'000, 42);
    const std::string csv = tmpFile("super_sweep.csv");
    const std::string j1 = tmpFile("super_sweep_full.ptjl");
    auto configs = sweepConfigs();

    super::JobOptions jo;
    jo.jobs = 2;
    jo.journalPath = j1;
    auto full = super::runSweepJob(trace, configs, csv, jo);
    ASSERT_TRUE(full.ok) << full.error;
    std::vector<u8> refBytes = readFileBytes(csv);
    ASSERT_FALSE(refBytes.empty());

    // Crash after three Done items, then resume.
    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    const std::string j2 = tmpFile("super_sweep_partial.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
        u64 kept = 0;
        for (const auto &rec : data.records) {
            if (rec.state == super::ItemState::Done && kept < 3) {
                ASSERT_TRUE(w.appendItem(rec));
                ++kept;
            }
        }
        ASSERT_EQ(kept, 3u);
    }
    std::remove(csv.c_str());

    auto resumed = super::resumeJob(j2, super::JobOptions{});
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.super.itemsSkipped, 3u);
    EXPECT_EQ(resumed.super.itemsDone, configs.size() - 3);
    EXPECT_EQ(readFileBytes(csv), refBytes);
    EXPECT_EQ(resumed.outFnv, full.outFnv);
}

TEST(SweepJob, ResumeRefusesModifiedTrace)
{
    const std::string trace =
        writeSyntheticPacked(tmpFile("super_sweep_mod.ptpk"), 800, 5);
    const std::string csv = tmpFile("super_sweep_mod.csv");
    const std::string j1 = tmpFile("super_sweep_mod.ptjl");
    auto configs = sweepConfigs();

    super::JobOptions jo;
    jo.jobs = 1;
    jo.journalPath = j1;
    auto full = super::runSweepJob(trace, configs, csv, jo);
    ASSERT_TRUE(full.ok) << full.error;

    // Rebuild an unfinished journal, then swap the trace underneath.
    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    const std::string j2 = tmpFile("super_sweep_mod2.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
    }
    writeSyntheticPacked(trace, 800, 6); // different content

    auto resumed = super::resumeJob(j2, super::JobOptions{});
    EXPECT_FALSE(resumed.ok);
    EXPECT_NE(resumed.error.find("fingerprint"), std::string::npos)
        << resumed.error;
}

TEST(SessionBatchJob, ResumedRunIsByteIdentical)
{
    std::vector<workload::SessionSpec> specs(2);
    specs[0].name = "alpha";
    specs[0].config.seed = 11;
    specs[0].config.interactions = 3;
    specs[0].config.meanIdleTicks = 1'500;
    specs[1].name = "beta";
    specs[1].config.seed = 12;
    specs[1].config.interactions = 3;
    specs[1].config.meanIdleTicks = 1'500;

    const std::string csv = tmpFile("super_batch.csv");
    const std::string j1 = tmpFile("super_batch.ptjl");
    super::JobOptions jo;
    jo.jobs = 2;
    jo.journalPath = j1;
    auto full = super::runSessionBatchJob(specs, csv, jo);
    ASSERT_TRUE(full.ok) << full.error;
    std::vector<u8> refBytes = readFileBytes(csv);
    ASSERT_FALSE(refBytes.empty());

    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    const std::string j2 = tmpFile("super_batch_partial.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
        for (const auto &rec : data.records) {
            if (rec.state == super::ItemState::Done && rec.item == 0) {
                ASSERT_TRUE(w.appendItem(rec));
                break;
            }
        }
    }
    std::remove(csv.c_str());

    auto resumed = super::resumeJob(j2, super::JobOptions{});
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.super.itemsSkipped, 1u);
    EXPECT_EQ(resumed.super.itemsDone, 1u);
    EXPECT_EQ(readFileBytes(csv), refBytes);
    EXPECT_EQ(resumed.outFnv, full.outFnv);
}

} // namespace
} // namespace pt
