/**
 * @file
 * Additional MC68000 coverage: memory-form shifts/rotates, extend-bit
 * rotates, NEGX chains, TRAPV, RTR, USP moves, nested interrupt
 * priorities, CPU state save/load, and a random-soup robustness fuzz.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "m68k/codebuilder.h"
#include "m68k/cpu.h"
#include "testutil.h"

namespace pt
{
namespace
{

using m68k::CodeBuilder;
using m68k::Cond;
using m68k::Size;
using m68k::Sr;
using test::CpuHarness;
using namespace m68k::ops;

TEST(CpuMemShift, WordShiftInMemoryByOne)
{
    CpuHarness h;
    h.bus.poke16(0x2000, 0x8001);
    auto b = test::codeAt();
    // LSR $2000.w (memory form shifts by exactly one)
    b.dcw(0xE2F9); // 1110 001 0 11 111001 = LSR.W abs.l
    b.dcl(0x2000);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek16(0x2000), 0x4000);
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::C); // bit 0 shifted out
}

TEST(CpuMemShift, AslMemorySetsOverflowOnSignChange)
{
    CpuHarness h;
    h.bus.poke16(0x2000, 0x4000);
    auto b = test::codeAt();
    // ASL $2000.w
    b.dcw(0xE1F9); // 1110 000 1 11 111001
    b.dcl(0x2000);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek16(0x2000), 0x8000);
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::V);
}

TEST(CpuRox, RotateThroughExtendUsesXBit)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(1), dr(0));
    b.add(Size::L, dr(0), dr(0)); // clears X (no carry)
    b.move(Size::L, imm(0x80000000), dr(1));
    // ROXL.L #1,D1: with X=0, MSB goes to C/X, 0 enters bit 0.
    b.dcw(0xE391); // 1110 001 1 10 0 10 001
    b.move(Size::L, dr(1), dr(2));
    // ROXL.L #1,D1 again: now X=1 enters bit 0.
    b.dcw(0xE391);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(2), 0u); // first rotate: 0 entered
    EXPECT_EQ(h.cpu.d(1), 1u); // second rotate: X=1 entered
}

TEST(CpuNegx, MultiPrecisionNegation)
{
    // Negate the 64-bit value 0x00000001_00000000: low NEG sets X=0
    // (operand zero -> borrow clear? NEG 0 = 0 with C clear), so use
    // a value with a nonzero low half instead: 0x00000001_00000002.
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(2), dr(0)); // low
    b.move(Size::L, imm(1), dr(1)); // high
    b.neg(Size::L, dr(0));          // low = -2, X=1
    b.dcw(0x4081);                  // NEGX.L D1: high = 0 - 1 - X
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0xFFFFFFFEu);
    EXPECT_EQ(h.cpu.d(1), 0xFFFFFFFEu); // -(0x1_00000002) high word
}

TEST(CpuFlow, TrapvTrapsOnlyOnOverflow)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    b.addq(Size::L, 1, dr(7));
    b.rte();
    b.bind(main);
    b.moveq(0, 7);
    b.move(Size::L, imm(1), dr(0));
    b.addi(Size::L, 1, dr(0)); // no overflow
    b.dcw(0x4E76);             // TRAPV: no trap
    b.move(Size::L, imm(0x7FFFFFFF), dr(0));
    b.addi(Size::L, 1, dr(0)); // overflow
    b.dcw(0x4E76);             // TRAPV: trap
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32(7 * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(h.cpu.d(7), 1u);
}

TEST(CpuFlow, RtrRestoresCcrAndReturns)
{
    // RTR pops a CCR image and then the return PC. The subroutine
    // pushes the CCR image itself, directly below the BSR return
    // address, clobbers the live flags, and returns through RTR.
    CpuHarness h;
    auto b = test::codeAt();
    auto sub = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(sub);
    b.move(Size::W, imm(Sr::N | Sr::X), predec(7)); // CCR image
    b.moveq(0, 0);
    b.tst(Size::L, dr(0)); // clobber: Z set
    b.dcw(0x4E77);         // RTR: restore CCR image, return
    b.bind(main);
    b.bsr(sub);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    u16 ccr = h.bus.peek16(0xF00);
    EXPECT_TRUE(ccr & Sr::N);
    EXPECT_TRUE(ccr & Sr::X);
    EXPECT_FALSE(ccr & Sr::Z);
}

TEST(CpuSystem, UspRoundTripThroughMoveUsp)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.lea(absl(0x7000), 0);
    b.moveUsp(0, true);  // USP = A0
    b.moveUsp(1, false); // A1 = USP
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.a(1), 0x7000u);
    EXPECT_EQ(h.cpu.usp(), 0x7000u);
}

TEST(CpuSystem, HigherPriorityInterruptPreemptsLower)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto isr4 = b.newLabel();
    auto isr6 = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(isr4); // level 4: records order, spins a bit
    b.move(Size::W, imm(4), absl(0xF10));
    b.rte();
    b.bind(isr6); // level 6
    b.move(Size::W, imm(6), absl(0xF12));
    b.rte();
    b.bind(main);
    b.stop(0x2000);
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32((24 + 4) * 4, b.labelAddr(isr4));
    h.bus.poke32((24 + 6) * 4, b.labelAddr(isr6));
    h.run();
    // Level 6 asserted: taken even though level 4 also pending later.
    h.cpu.setIrqLevel(6);
    h.cpu.step();
    h.cpu.setIrqLevel(0);
    h.run();
    EXPECT_EQ(h.bus.peek16(0xF12), 6u);
    EXPECT_EQ(h.bus.peek16(0xF10), 0u);
}

TEST(CpuState, SaveLoadRoundTrip)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x11111111), dr(3));
    b.movea(Size::L, imm(0x2222), 4);
    b.stop(0x2700);
    h.load(b);
    h.run();
    m68k::CpuState st = h.cpu.saveState();

    CpuHarness h2;
    h2.cpu.loadState(st);
    EXPECT_EQ(h2.cpu.d(3), 0x11111111u);
    EXPECT_EQ(h2.cpu.a(4), 0x2222u);
    EXPECT_EQ(h2.cpu.pc(), h.cpu.pc());
    EXPECT_EQ(h2.cpu.sr(), h.cpu.sr());
    EXPECT_TRUE(h2.cpu.stopped());
    EXPECT_EQ(h2.cpu.totalCycles(), h.cpu.totalCycles());
}

TEST(CpuFuzz, RandomSoupNeverHangsTheHost)
{
    // Fill memory with random words, install catch-all vectors that
    // halt, and step a bounded number of times. The CPU must remain
    // well-defined: every step returns nonzero cycles, and the run
    // either halts or keeps making progress.
    for (u64 seed : {1ull, 2ull, 3ull, 99ull}) {
        CpuHarness h;
        Rng rng(seed);
        for (Addr a = 0x1000; a < 0x9000; a += 2)
            h.bus.poke16(a, static_cast<u16>(rng.next()));
        // Vectors: everything points at a STOP instruction.
        h.bus.poke16(0xE00, 0x4E72); // STOP #...
        h.bus.poke16(0xE02, 0x2700);
        for (int v = 2; v < 64; ++v)
            h.bus.poke32(static_cast<Addr>(v) * 4, 0xE00);
        h.cpu.reset();
        u64 steps = 0;
        while (steps < 200'000 && !h.cpu.stopped() &&
               !h.cpu.halted()) {
            Cycles c = h.cpu.step();
            ASSERT_GT(c, 0u);
            ++steps;
        }
        SUCCEED();
    }
}

TEST(CpuBcdMem, AbcdPredecrementMemoryForm)
{
    // Multi-byte packed-decimal addition, lowest byte first, exactly
    // how 68k BCD arithmetic was meant to be chained.
    CpuHarness h;
    h.bus.poke8(0x2000, 0x12); // high byte of 1234
    h.bus.poke8(0x2001, 0x34);
    h.bus.poke8(0x3000, 0x08); // high byte of 0877
    h.bus.poke8(0x3001, 0x77);
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x2002), 0); // one past the low bytes
    b.movea(Size::L, imm(0x3002), 1);
    b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF));
    // ABCD -(A1),-(A0) twice: low byte then high byte with carry.
    b.dcw(0xC109);
    b.dcw(0xC109);
    b.stop(0x2700);
    h.load(b);
    h.run();
    // 1234 + 0877 = 2111.
    EXPECT_EQ(h.bus.peek8(0x2000), 0x21);
    EXPECT_EQ(h.bus.peek8(0x2001), 0x11);
}

TEST(CpuBcdMem, SbcdPredecrementMemoryForm)
{
    CpuHarness h;
    h.bus.poke8(0x2000, 0x21);
    h.bus.poke8(0x2001, 0x11);
    h.bus.poke8(0x3000, 0x08);
    h.bus.poke8(0x3001, 0x77);
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x2002), 0);
    b.movea(Size::L, imm(0x3002), 1);
    b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF));
    // SBCD -(A1),-(A0) twice: 2111 - 0877 = 1234.
    b.dcw(0x8109);
    b.dcw(0x8109);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek8(0x2000), 0x12);
    EXPECT_EQ(h.bus.peek8(0x2001), 0x34);
}

TEST(CpuMisc, MoveToCcrLeavesSupervisorBitsAlone)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(Sr::X | Sr::N), dr(0));
    // MOVE D0,CCR
    b.dcw(0x44C0);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    u16 sr = h.bus.peek16(0xF00);
    EXPECT_TRUE(sr & Sr::N);
    EXPECT_TRUE(sr & Sr::X);
    EXPECT_TRUE(sr & Sr::S); // supervisor untouched by CCR move
}

TEST(CpuMisc, CmpaComparesFullAddressWidth)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto lower = b.newLabel();
    b.movea(Size::L, imm(0x00010000), 0);
    b.moveq(0, 0);
    b.cmpa(Size::L, imm(0x00020000), 0); // A0 - imm: lower
    b.bcc(Cond::CS, lower);
    b.moveq(1, 0);
    b.bind(lower);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0u); // branch taken: A0 < 0x20000
}

TEST(CpuMisc, CmpaWordSourceSignExtends)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto eq = b.newLabel();
    b.movea(Size::L, imm(0xFFFF8000), 0);
    b.moveq(0, 0);
    b.cmpa(Size::W, imm(0x8000), 0); // sign-extends to 0xFFFF8000
    b.bcc(Cond::EQ, eq);
    b.moveq(1, 0);
    b.bind(eq);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0u);
}

} // namespace
} // namespace pt
