/**
 * @file
 * PilotOS integration tests: boot, trap dispatch, event flow through
 * the hardware input path, database activity from the applications,
 * and whole-system determinism.
 */

#include <string>

#include <gtest/gtest.h>

#include "device/device.h"
#include "device/snapshot.h"
#include "os/guestmem.h"
#include "os/pilotos.h"

namespace pt
{
namespace
{

using device::Btn;
using device::Device;
using device::Snapshot;
using os::DbView;
using os::GuestHeap;
using os::listDatabases;

/** Boots a provisioned device and tracks guest debug output. */
struct OsFixture
{
    OsFixture()
    {
        dev.io().setDebugSink(
            [this](char c) { debugOut.push_back(c); });
        syms = os::setupDevice(dev);
    }

    /** Presses and releases a hardware button. */
    void
    pressButton(u16 bit)
    {
        dev.io().buttonsSet(bit);
        dev.runUntilIdle();
        dev.io().buttonsSet(0);
        dev.runUntilIdle();
    }

    /** Performs a pen stroke over @p ticks system ticks. */
    void
    stroke(u16 x0, u16 y0, u16 x1, u16 y1, Ticks ticks)
    {
        dev.io().penTouch(x0, y0);
        Ticks start = dev.ticks();
        for (Ticks t = 0; t <= ticks; t += 2) {
            u16 x = static_cast<u16>(x0 + (x1 - x0) * t / ticks);
            u16 y = static_cast<u16>(y0 + (y1 - y0) * t / ticks);
            dev.io().penMoveTo(x, y);
            dev.runUntilTick(start + t);
        }
        dev.io().penRelease();
        dev.runUntilTick(start + ticks + 6);
        dev.runUntilIdle();
    }

    /** Taps the screen at (x, y). */
    void
    tap(u16 x, u16 y)
    {
        dev.io().penTouch(x, y);
        dev.runUntilTick(dev.ticks() + 4);
        dev.io().penRelease();
        dev.runUntilTick(dev.ticks() + 6);
        dev.runUntilIdle();
    }

    const DbView *
    findDb(const std::vector<DbView> &dbs, const std::string &name)
    {
        for (const auto &d : dbs)
            if (d.name == name)
                return &d;
        return nullptr;
    }

    Device dev;
    os::RomSymbols syms;
    std::string debugOut;
};

TEST(OsBoot, ReachesLauncherIdle)
{
    OsFixture f;
    EXPECT_FALSE(f.dev.halted());
    EXPECT_TRUE(f.dev.idle());
    EXPECT_EQ(f.debugOut, ""); // no '?' (bad selector) or 'H' (halt)
}

TEST(OsBoot, LaunchDbListsAllApps)
{
    OsFixture f;
    auto dbs = listDatabases(f.dev.bus());
    const DbView *launch = f.findDb(dbs, os::kLaunchDbName);
    ASSERT_NE(launch, nullptr);
    EXPECT_EQ(launch->records.size(), 4u);
    // Each record is {creator u32, code ptr u32}.
    for (const auto &r : launch->records)
        EXPECT_EQ(r.size, 8u);
}

TEST(OsBoot, AppDatabasesPresentWithBackupBit)
{
    OsFixture f;
    auto dbs = listDatabases(f.dev.bus());
    for (const char *name :
         {"Launcher", "MemoPad", "Puzzle", "Datebook"}) {
        const DbView *db = f.findDb(dbs, name);
        ASSERT_NE(db, nullptr) << name;
        EXPECT_TRUE(db->attrs & os::Db::AttrExecutable);
        EXPECT_TRUE(db->attrs & os::Db::AttrBackup);
        EXPECT_EQ(db->records.size(), 1u); // the code resource
        EXPECT_GT(db->records[0].size, 50u);
    }
}

TEST(OsLauncher, TapConsumesRandomAndStaysUp)
{
    OsFixture f;
    u32 seedBefore = f.dev.bus().peek32(os::Lay::GRandSeed);
    f.tap(80, 80);
    EXPECT_FALSE(f.dev.halted());
    EXPECT_EQ(f.debugOut, "");
    u32 seedAfter = f.dev.bus().peek32(os::Lay::GRandSeed);
    EXPECT_NE(seedBefore, seedAfter); // SysRandom advanced the seed
}

TEST(OsMemo, AppButtonSwitchesAndCreatesMemoDb)
{
    OsFixture f;
    auto before = listDatabases(f.dev.bus());
    EXPECT_EQ(f.findDb(before, "MemoDB"), nullptr);
    f.pressButton(Btn::App2); // switch to MemoPad
    EXPECT_FALSE(f.dev.halted());
    auto after = listDatabases(f.dev.bus());
    ASSERT_NE(f.findDb(after, "MemoDB"), nullptr);
    EXPECT_EQ(f.debugOut, "");
}

TEST(OsMemo, StrokeAppendsRecordWithPointCount)
{
    OsFixture f;
    f.pressButton(Btn::App2);
    f.stroke(20, 30, 120, 100, 40); // ~21 samples over 40 ticks
    auto dbs = listDatabases(f.dev.bus());
    const DbView *memo = f.findDb(dbs, "MemoDB");
    ASSERT_NE(memo, nullptr);
    ASSERT_EQ(memo->records.size(), 1u);
    ASSERT_EQ(memo->records[0].size, 8u);
    u16 points = static_cast<u16>((memo->records[0].data[0] << 8) |
                                  memo->records[0].data[1]);
    EXPECT_GE(points, 15u);
    EXPECT_LE(points, 25u);
}

TEST(OsMemo, MultipleStrokesMultipleRecords)
{
    OsFixture f;
    f.pressButton(Btn::App2);
    f.stroke(10, 10, 50, 50, 20);
    f.stroke(60, 60, 100, 100, 20);
    f.stroke(20, 120, 140, 30, 30);
    auto dbs = listDatabases(f.dev.bus());
    const DbView *memo = f.findDb(dbs, "MemoDB");
    ASSERT_NE(memo, nullptr);
    EXPECT_EQ(memo->records.size(), 3u);
}

TEST(OsPuzzle, LaunchCreatesShuffledBoard)
{
    OsFixture f;
    f.pressButton(Btn::App3); // Puzzle
    EXPECT_FALSE(f.dev.halted());
    auto dbs = listDatabases(f.dev.bus());
    const DbView *pz = f.findDb(dbs, "PuzzleDB");
    ASSERT_NE(pz, nullptr);
    ASSERT_EQ(pz->records.size(), 1u);
    ASSERT_EQ(pz->records[0].size, 16u);
    // The board is a permutation of 0..15.
    bool seen[16] = {};
    for (u8 v : pz->records[0].data) {
        ASSERT_LT(v, 16);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
    EXPECT_EQ(f.debugOut, "");
}

TEST(OsPuzzle, TapsSlideTiles)
{
    OsFixture f;
    f.pressButton(Btn::App3);
    auto boardOf = [&] {
        auto dbs = listDatabases(f.dev.bus());
        const DbView *pz = f.findDb(dbs, "PuzzleDB");
        return pz->records[0].data;
    };
    auto before = boardOf();
    // Tap every cell once; at least one tap must be adjacent to the
    // blank and thus change the board.
    for (int cy = 0; cy < 4; ++cy)
        for (int cx = 0; cx < 4; ++cx)
            f.tap(static_cast<u16>(cx * 40 + 20),
                  static_cast<u16>(cy * 40 + 20));
    auto after = boardOf();
    EXPECT_NE(before, after);
    EXPECT_FALSE(f.dev.halted());
    // Still a permutation.
    bool seen[16] = {};
    for (u8 v : after) {
        ASSERT_LT(v, 16);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(OsSwitching, RoundTripThroughAllApps)
{
    OsFixture f;
    f.pressButton(Btn::App2); // memo
    f.pressButton(Btn::App3); // puzzle
    f.pressButton(Btn::App1); // launcher
    f.pressButton(Btn::App2); // memo again
    f.stroke(40, 40, 80, 80, 20);
    EXPECT_FALSE(f.dev.halted());
    EXPECT_EQ(f.debugOut, "");
    auto dbs = listDatabases(f.dev.bus());
    EXPECT_NE(f.findDb(dbs, "MemoDB"), nullptr);
    EXPECT_NE(f.findDb(dbs, "PuzzleDB"), nullptr);
}

TEST(OsHeap, HostAndGuestAllocatorsAgree)
{
    // Host-side allocations must leave the heap walkable and the
    // guest must keep functioning afterwards.
    OsFixture f;
    GuestHeap heap(f.dev.bus());
    auto s0 = heap.stats();
    Addr p = heap.chunkNew(100);
    ASSERT_NE(p, 0u);
    auto s1 = heap.stats();
    EXPECT_EQ(s1.usedChunks, s0.usedChunks + 1);
    heap.chunkFree(p);
    auto s2 = heap.stats();
    EXPECT_EQ(s2.usedChunks, s0.usedChunks);
    // The guest still runs: create MemoDB via the app.
    f.pressButton(Btn::App2);
    EXPECT_FALSE(f.dev.halted());
}

TEST(OsDeterminism, IdenticalSessionsIdenticalFingerprints)
{
    auto runSession = [] {
        OsFixture f;
        f.pressButton(Btn::App2);
        f.stroke(20, 30, 120, 100, 40);
        f.pressButton(Btn::App3);
        f.tap(60, 60);
        return Snapshot::capture(f.dev).fingerprint();
    };
    EXPECT_EQ(runSession(), runSession());
}

TEST(OsIdle, NilEventsPollKeyCurrentState)
{
    OsFixture f;
    f.pressButton(Btn::App2); // memo polls on 50-tick timeouts
    u32 nil0 = f.dev.bus().peek32(os::Lay::GNilEvtCount);
    f.dev.runUntilTick(f.dev.ticks() + 500); // ~10 timeouts
    u32 nil1 = f.dev.bus().peek32(os::Lay::GNilEvtCount);
    EXPECT_GE(nil1 - nil0, 8u);
    EXPECT_LE(nil1 - nil0, 12u);
}

TEST(OsDatebook, TapsCreateRtcStampedAppointments)
{
    OsFixture f;
    f.pressButton(Btn::App4); // Datebook
    EXPECT_FALSE(f.dev.halted());
    f.tap(40, 60);
    f.dev.runUntilTick(f.dev.ticks() + 200); // two seconds pass
    f.tap(40, 120);
    auto dbs = listDatabases(f.dev.bus());
    const DbView *db = f.findDb(dbs, "DatebookDB");
    ASSERT_NE(db, nullptr);
    ASSERT_EQ(db->records.size(), 2u);
    auto rtcOf = [](const os::DbRecordView &r) {
        return (static_cast<u32>(r.data[0]) << 24) |
               (r.data[1] << 16) | (r.data[2] << 8) | r.data[3];
    };
    u32 t0 = rtcOf(db->records[0]);
    u32 t1 = rtcOf(db->records[1]);
    EXPECT_GT(t0, 3'000'000'000u); // seconds since 1904 (year ~2004)
    EXPECT_GE(t1, t0 + 1);         // the second tap is later
    // The y coordinate selects the time slot.
    u16 slot0 = static_cast<u16>((db->records[0].data[4] << 8) |
                                 db->records[0].data[5]);
    EXPECT_EQ(slot0, 60u);
    EXPECT_EQ(f.debugOut, "");
}

} // namespace
} // namespace pt
