/**
 * @file
 * Collection hack tests: the five trap patches log exactly what the
 * paper's hacks log (§2.3.2), the overhead grows with database size
 * (§2.3.3 / Fig 3), PalmistMode logs far more, and uninstall restores
 * the pristine dispatch table.
 */

#include <gtest/gtest.h>

#include "device/device.h"
#include "hacks/hackmgr.h"
#include "os/guestmem.h"
#include "os/guestrun.h"
#include "os/pilotos.h"
#include "trace/activitylog.h"

namespace pt
{
namespace
{

using device::Btn;
using device::Device;
using hacks::HackManager;
using hacks::HackOptions;
using hacks::LogType;
using trace::ActivityLog;

struct HackFixture
{
    HackFixture()
    {
        syms = os::setupDevice(dev);
        mgr = std::make_unique<HackManager>(dev, syms);
    }

    void
    pressButton(u16 bit)
    {
        dev.io().buttonsSet(bit);
        dev.runUntilIdle();
        dev.io().buttonsSet(0);
        dev.runUntilIdle();
    }

    void
    stroke(u16 x0, u16 y0, u16 x1, u16 y1, Ticks ticks)
    {
        dev.io().penTouch(x0, y0);
        // Rest at the touch point through one digitizer sample.
        dev.runUntilTick(dev.ticks() + 3);
        Ticks start = dev.ticks();
        for (Ticks t = 0; t <= ticks; t += 2) {
            dev.io().penMoveTo(
                static_cast<u16>(x0 + (x1 - x0) * t / ticks),
                static_cast<u16>(y0 + (y1 - y0) * t / ticks));
            dev.runUntilTick(start + t);
        }
        dev.io().penRelease();
        dev.runUntilTick(start + ticks + 6);
        dev.runUntilIdle();
    }

    Device dev;
    os::RomSymbols syms;
    std::unique_ptr<HackManager> mgr;
};

TEST(Hacks, InstallCreatesLogDb)
{
    HackFixture f;
    EXPECT_EQ(f.mgr->activityLogDb(), 0u);
    f.mgr->installCollectionHacks();
    EXPECT_NE(f.mgr->activityLogDb(), 0u);
    EXPECT_EQ(f.mgr->logRecordCount(), 0u);
}

TEST(Hacks, PenStrokeLogsSamplesWithCoordinates)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.stroke(20, 30, 120, 100, 40);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    u64 pens = log.countOf(LogType::PenPoint);
    EXPECT_GE(pens, 16u); // ~21 samples + final pen-up
    // First pen record carries the initial coordinates.
    const trace::LogRecord *first = nullptr;
    const trace::LogRecord *lastDown = nullptr;
    bool sawUp = false;
    for (const auto &r : log.records) {
        if (r.type != LogType::PenPoint)
            continue;
        if (!first)
            first = &r;
        if (r.penDown())
            lastDown = &r;
        else
            sawUp = true;
    }
    ASSERT_NE(first, nullptr);
    EXPECT_TRUE(first->penDown());
    EXPECT_EQ(first->penX(), 20u);
    EXPECT_EQ(first->penY(), 30u);
    ASSERT_NE(lastDown, nullptr);
    EXPECT_EQ(lastDown->penX(), 120u);
    EXPECT_EQ(lastDown->penY(), 100u);
    EXPECT_TRUE(sawUp); // the stroke ends with a pen-up record
}

TEST(Hacks, ButtonPressLogsKeyEvent)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App2);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    ASSERT_GE(log.countOf(LogType::Key), 1u);
    bool found = false;
    for (const auto &r : log.records)
        if (r.type == LogType::Key && r.data == Btn::App2)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Hacks, MemoIdlePollsLogKeyCurrentState)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App2);               // memo: 50-tick polls
    f.dev.io().buttonsSet(Btn::PageUp);     // held scroll button
    f.dev.runUntilTick(f.dev.ticks() + 300);
    f.dev.io().buttonsSet(0);
    f.dev.runUntilIdle();
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    ASSERT_GE(log.countOf(LogType::KeyState), 3u);
    // At least one poll observed the held PageUp bit.
    bool sawHeld = false;
    for (const auto &r : log.records)
        if (r.type == LogType::KeyState && (r.data & Btn::PageUp))
            sawHeld = true;
    EXPECT_TRUE(sawHeld);
}

TEST(Hacks, PuzzleShuffleLogsNonzeroRandomSeed)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App3); // first Puzzle launch seeds SysRandom
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    ASSERT_GE(log.countOf(LogType::Random), 1u);
    bool nonzeroSeed = false;
    for (const auto &r : log.records)
        if (r.type == LogType::Random && r.extra != 0)
            nonzeroSeed = true;
    EXPECT_TRUE(nonzeroSeed);
}

TEST(Hacks, MemoStrokesBroadcastNotify)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App2);
    for (int i = 0; i < 4; ++i)
        f.stroke(10, static_cast<u16>(10 + i * 10), 100,
                 static_cast<u16>(20 + i * 10), 16);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    EXPECT_GE(log.countOf(LogType::Notify), 1u);
}

TEST(Hacks, UninstallRestoresDispatchTable)
{
    HackFixture f;
    u32 before = f.dev.bus().peek32(
        os::Lay::TrapTable + os::Trap::EvtEnqueueKey * 4);
    f.mgr->installCollectionHacks();
    u32 patchedEntry = f.dev.bus().peek32(
        os::Lay::TrapTable + os::Trap::EvtEnqueueKey * 4);
    EXPECT_NE(patchedEntry, before);
    f.mgr->uninstall();
    u32 after = f.dev.bus().peek32(
        os::Lay::TrapTable + os::Trap::EvtEnqueueKey * 4);
    EXPECT_EQ(after, before);
    // Activity after uninstall does not log.
    u32 n = f.mgr->logRecordCount();
    f.pressButton(Btn::App2);
    EXPECT_EQ(f.mgr->logRecordCount(), n);
}

TEST(Hacks, LogTimestampsAreMonotonic)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App2);
    f.stroke(20, 20, 100, 100, 30);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    ASSERT_GE(log.records.size(), 5u);
    for (std::size_t i = 1; i < log.records.size(); ++i)
        EXPECT_GE(log.records[i].tick, log.records[i - 1].tick);
}

TEST(Hacks, OverheadGrowsWithDatabaseSize)
{
    // §2.3.3: the per-call overhead of the EvtEnqueueKey hack grows
    // with the number of records already in the database, because the
    // memory manager's scan lengthens. Tight loop, original call
    // eliminated, exactly like the paper's micro-benchmark.
    HackFixture f;
    HackOptions opts;
    opts.callOriginal = false;
    f.mgr->installCollectionHacks(opts);

    os::GuestRunner runner(f.dev);
    auto batch = [&](int calls) {
        return runner.run([&](m68k::CodeBuilder &b) {
            using namespace m68k::ops;
            auto loop = b.newLabel();
            b.move(m68k::Size::L, imm(static_cast<u32>(calls - 1)),
                   dr(6));
            b.bind(loop);
            b.moveq(1, 1); // keycode
            b.trapSel(15, os::Trap::EvtEnqueueKey);
            b.dbra(6, loop);
            b.stop(0x2700);
        });
    };

    u64 early = batch(200);   // records 0..200
    for (int i = 0; i < 8; ++i)
        batch(200);           // grow the log to ~1800 records
    u64 late = batch(200);    // records ~1800..2000
    EXPECT_GT(late, early + early / 4); // clearly growing
    EXPECT_GE(f.mgr->logRecordCount(), 1900u);
}

TEST(Hacks, PalmistModeLogsEverySystemCall)
{
    HackFixture f;
    f.mgr->installPalmistMode();
    f.pressButton(Btn::App2);
    // Let the memo app's idle polls run for five seconds: every
    // EvtGetEvent / KeyCurrentState / FbFill call is now logged.
    f.dev.runUntilTick(f.dev.ticks() + 500);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    // EvtGetEvent, DmFindDatabase, KeyCurrentState, ... all logged.
    u64 palmist = 0;
    for (const auto &r : log.records)
        if (r.type >= LogType::PalmistBase)
            ++palmist;
    EXPECT_GT(palmist, 10u);

    // Compare with the five-hack log for the same stimulus.
    HackFixture g;
    g.mgr->installCollectionHacks();
    g.pressButton(Btn::App2);
    ActivityLog fiveLog = ActivityLog::extract(g.dev.bus());
    EXPECT_GT(palmist, fiveLog.records.size() * 3);
}

TEST(ActivityLogFile, RoundTrip)
{
    HackFixture f;
    f.mgr->installCollectionHacks();
    f.pressButton(Btn::App2);
    f.stroke(10, 10, 60, 60, 20);
    ActivityLog log = ActivityLog::extract(f.dev.bus());
    ASSERT_GE(log.records.size(), 3u);

    std::string path = testing::TempDir() + "/pt_actlog_test.bin";
    ASSERT_TRUE(log.save(path));
    ActivityLog back;
    ASSERT_TRUE(ActivityLog::load(path, back));
    EXPECT_EQ(back.records, log.records);
    std::remove(path.c_str());
}

} // namespace
} // namespace pt
