/**
 * @file
 * Unit tests for the worker pool: chunk claiming, caller
 * participation, inline degradation at jobs = 1, nested parallelFor
 * from worker threads, exception propagation, parallelMap ordering,
 * and clean teardown with work still queued.
 */

#include <atomic>
#include <chrono>
#include <new>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/threadpool.h"

namespace pt
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, JobsOneRunsInlineOnTheCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::size_t ran = 0;
    pool.parallelFor(100, [&](std::size_t) {
        // Inline execution means no synchronization is needed here.
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++ran;
    });
    EXPECT_EQ(ran, 100u);
}

TEST(ThreadPool, EmptyLoopIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, GrainBatchesIndices)
{
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(
        1000,
        [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        64);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ExceptionInTaskPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(1000,
                         [&](std::size_t i) {
                             if (i == 137)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);

    // The pool survives a failed loop and runs later work.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(100, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, WorkerThreadExceptionRethrownOnCaller)
{
    // Regression: an exception thrown on a *pool worker* thread (not
    // the caller running items inline) must be captured and rethrown
    // on the submitting thread with its message intact. The caller's
    // chunks spin until a worker has demonstrably run an item, so the
    // throw is guaranteed to originate off-caller.
    ThreadPool pool(4);
    std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> workerThrew{false};
    bool caught = false;
    try {
        pool.parallelFor(
            256,
            [&](std::size_t) {
                if (std::this_thread::get_id() == caller) {
                    // Park the caller until a worker item has thrown
                    // (bounded so a broken pool fails, not hangs).
                    for (int spin = 0;
                         !workerThrew.load(std::memory_order_acquire) &&
                         spin < 5000;
                         ++spin) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                    return;
                }
                workerThrew.store(true, std::memory_order_release);
                throw std::runtime_error("chaos-worker-42");
            },
            1);
    } catch (const std::runtime_error &e) {
        caught = true;
        EXPECT_STREQ(e.what(), "chaos-worker-42");
    }
    EXPECT_TRUE(workerThrew.load()) << "no pool worker ever ran an item";
    EXPECT_TRUE(caught) << "worker exception was swallowed";

    // The pool must stay usable after the failed loop.
    std::atomic<std::size_t> n{0};
    pool.parallelFor(64, [&](std::size_t) {
        n.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 64u);
}

TEST(ThreadPool, WorkerBadAllocKeepsItsType)
{
    // std::bad_alloc from a work item must arrive on the caller as
    // std::bad_alloc, not be flattened into a generic exception.
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      if (i % 7 == 3)
                                          throw std::bad_alloc();
                                  }),
                 std::bad_alloc);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    // A worker that calls parallelFor must not deadlock waiting for
    // peers that are busy with the outer loop; nested calls run
    // inline on the worker.
    ThreadPool pool(2);
    std::atomic<std::size_t> inner{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(10, [&](std::size_t) {
            inner.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner.load(), 80u);
}

TEST(ThreadPool, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    std::vector<int> in;
    for (int i = 0; i < 500; ++i)
        in.push_back(i);
    std::vector<std::string> out =
        pool.parallelMap(in, [](const int &v) {
            return std::to_string(v * 3);
        });
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], std::to_string(static_cast<int>(i) * 3));
}

TEST(ThreadPool, ManySmallLoopsOnOnePool)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 200; ++round) {
        pool.parallelFor(17, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPool, TeardownWithIdleWorkersIsClean)
{
    // Construct and destroy pools repeatedly; destruction must join
    // every worker (no leaks, no crashes under TSan).
    for (int i = 0; i < 20; ++i) {
        ThreadPool pool(3);
        std::atomic<std::size_t> n{0};
        pool.parallelFor(10, [&](std::size_t) {
            n.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(n.load(), 10u);
    }
}

TEST(ThreadPool, ConcurrentLoopsFromManyThreads)
{
    // External threads may submit loops to one pool concurrently.
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&] {
            for (int round = 0; round < 50; ++round) {
                pool.parallelFor(31, [&](std::size_t) {
                    total.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &c : clients)
        c.join();
    EXPECT_EQ(total.load(), 4u * 50u * 31u);
}

TEST(ThreadPoolDefaults, HardwareAndOverride)
{
    EXPECT_GE(hardwareJobs(), 1u);
    unsigned before = defaultJobs();
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    setDefaultJobs(0); // back to the environment/hardware default
    EXPECT_EQ(defaultJobs(), before);
}

TEST(ThreadPoolDefaults, SharedPoolFollowsDefault)
{
    setDefaultJobs(2);
    EXPECT_EQ(ThreadPool::shared().jobs(), 2u);
    std::atomic<std::size_t> n{0};
    ThreadPool::shared().parallelFor(64, [&](std::size_t) {
        n.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 64u);
    setDefaultJobs(0);
}

} // namespace
} // namespace pt
