/**
 * @file
 * MC68000 core tests: data movement, arithmetic flags, addressing
 * modes, control flow, and exception processing. Code under test is
 * assembled with CodeBuilder, so these double as assembler tests.
 */

#include <gtest/gtest.h>

#include "m68k/codebuilder.h"
#include "m68k/cpu.h"
#include "testutil.h"

namespace pt
{
namespace
{

using m68k::CodeBuilder;
using m68k::Cond;
using m68k::Size;
using m68k::Sr;
using test::CpuHarness;
using namespace m68k::ops;

TEST(CpuMove, MoveqSignExtends)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.moveq(-5, 3);
    b.moveq(7, 4);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(3), 0xFFFFFFFBu);
    EXPECT_EQ(h.cpu.d(4), 7u);
}

TEST(CpuMove, RegisterToRegisterSizes)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0xAABBCCDD), dr(0));
    b.move(Size::L, imm(0x11223344), dr(1));
    b.move(Size::B, dr(0), dr(1)); // only low byte replaced
    b.move(Size::L, imm(0x55667788), dr(2));
    b.move(Size::W, dr(0), dr(2)); // low word replaced
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(1), 0x112233DDu);
    EXPECT_EQ(h.cpu.d(2), 0x5566CCDDu);
}

TEST(CpuMove, MemoryRoundTrip)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0xCAFEBABE), absl(0x2000));
    b.move(Size::L, absl(0x2000), dr(5));
    b.move(Size::W, absl(0x2000), dr(6));
    b.move(Size::B, absl(0x2001), dr(7));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(5), 0xCAFEBABEu);
    EXPECT_EQ(h.cpu.d(6) & 0xFFFF, 0xCAFEu);
    EXPECT_EQ(h.cpu.d(7) & 0xFF, 0xFEu);
    EXPECT_EQ(h.bus.peek32(0x2000), 0xCAFEBABEu);
}

TEST(CpuMove, MoveaWordSignExtends)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.movea(Size::W, imm(0x8000), 2);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.a(2), 0xFFFF8000u);
}

TEST(CpuMove, PostincAndPredec)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x3000), 0);
    b.move(Size::W, imm(0x1111), postinc(0));
    b.move(Size::W, imm(0x2222), postinc(0));
    b.move(Size::W, predec(0), dr(0)); // reads back 0x2222
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0) & 0xFFFF, 0x2222u);
    EXPECT_EQ(h.cpu.a(0), 0x3002u);
    EXPECT_EQ(h.bus.peek16(0x3000), 0x1111u);
}

TEST(CpuMove, ByteOnA7KeepsWordAlignment)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::B, imm(0x42), predec(7));
    b.stop(0x2700);
    h.load(b);
    u32 sp0 = h.cpu.a(7);
    h.run();
    EXPECT_EQ(h.cpu.a(7), sp0 - 2); // decremented by 2, not 1
}

TEST(CpuMove, DispAndIndexedModes)
{
    CpuHarness h;
    h.bus.poke32(0x2010, 0xFEEDF00D);
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x2000), 1);
    b.move(Size::L, disp(1, 0x10), dr(0));
    b.move(Size::L, imm(0x10), dr(1));
    b.move(Size::L, indexed(1, 1), dr(2));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0xFEEDF00Du);
    EXPECT_EQ(h.cpu.d(2), 0xFEEDF00Du);
}

TEST(CpuAlu, AddFlagsCarryOverflow)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x7FFFFFFF), dr(0));
    b.addi(Size::L, 1, dr(0)); // overflow, no carry
    b.moveFromSr(absl(0xF00)); // capture CCR before STOP rewrites SR
    b.stop(0x2700);
    h.load(b);
    h.run();
    u16 ccr = h.bus.peek16(0xF00);
    EXPECT_EQ(h.cpu.d(0), 0x80000000u);
    EXPECT_TRUE(ccr & Sr::V);
    EXPECT_FALSE(ccr & Sr::C);
    EXPECT_TRUE(ccr & Sr::N);
}

TEST(CpuAlu, AddByteCarryWraps)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0xFF), dr(0));
    b.addi(Size::B, 1, dr(0));
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    u16 ccr = h.bus.peek16(0xF00);
    EXPECT_EQ(h.cpu.d(0) & 0xFF, 0u);
    EXPECT_TRUE(ccr & Sr::C);
    EXPECT_TRUE(ccr & Sr::X);
    EXPECT_TRUE(ccr & Sr::Z);
    EXPECT_FALSE(ccr & Sr::V);
}

TEST(CpuAlu, SubBorrow)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(3), dr(0));
    b.subi(Size::L, 5, dr(0));
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    u16 ccr = h.bus.peek16(0xF00);
    EXPECT_EQ(h.cpu.d(0), 0xFFFFFFFEu);
    EXPECT_TRUE(ccr & Sr::C);
    EXPECT_TRUE(ccr & Sr::N);
}

TEST(CpuAlu, AddqSubqOnAddressRegisterIgnoresFlagsAndSize)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x10000), 3);
    b.move(Size::L, imm(0), dr(0));
    b.tst(Size::L, dr(0)); // Z set
    b.addq(Size::W, 4, ar(3));
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.a(3), 0x10004u);
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::Z); // unaffected by ADDQ to An
}

TEST(CpuAlu, AddToMemoryDestination)
{
    CpuHarness h;
    h.bus.poke32(0x4000, 100);
    auto b = test::codeAt();
    b.move(Size::L, imm(23), dr(1));
    b.add(Size::L, dr(1), absl(0x4000));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek32(0x4000), 123u);
}

TEST(CpuAlu, MuluProducesLongResult)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(300), dr(0));
    b.move(Size::L, imm(500), dr(1));
    b.mulu(dr(1), 0);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 150000u);
}

TEST(CpuAlu, DivuQuotientAndRemainder)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(100007), dr(0));
    b.move(Size::L, imm(100), dr(1));
    b.divu(dr(1), 0);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0) & 0xFFFF, 1000u);       // quotient
    EXPECT_EQ((h.cpu.d(0) >> 16) & 0xFFFF, 7u);  // remainder
}

TEST(CpuAlu, DivideByZeroRaisesException)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    b.moveq(99, 7);
    b.stop(0x2700);
    b.bind(main);
    b.move(Size::L, imm(5), dr(0));
    b.move(Size::L, imm(0), dr(1));
    b.divu(dr(1), 0);
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32(5 * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(h.cpu.d(7), 99u);
}

TEST(CpuAlu, NegAndNot)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(5), dr(0));
    b.neg(Size::L, dr(0));
    b.move(Size::L, imm(0x0F0F0F0F), dr(1));
    b.not_(Size::L, dr(1));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0xFFFFFFFBu);
    EXPECT_EQ(h.cpu.d(1), 0xF0F0F0F0u);
}

TEST(CpuAlu, ExtAndSwap)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x000000F0), dr(0));
    b.ext(Size::W, 0); // byte F0 -> word FFF0
    b.move(Size::L, imm(0x00008000), dr(1));
    b.ext(Size::L, 1); // word 8000 -> long FFFF8000
    b.move(Size::L, imm(0x12345678), dr(2));
    b.swap(2);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0) & 0xFFFF, 0xFFF0u);
    EXPECT_EQ(h.cpu.d(1), 0xFFFF8000u);
    EXPECT_EQ(h.cpu.d(2), 0x56781234u);
}

TEST(CpuFlow, LoopWithDbra)
{
    // Sum 1..10 with a DBRA loop.
    CpuHarness h;
    auto b = test::codeAt();
    b.moveq(0, 0);       // sum
    b.moveq(10, 1);      // value
    b.moveq(9, 2);       // loop counter (10 iterations)
    auto loop = b.hereLabel();
    b.add(Size::L, dr(1), dr(0));
    b.subq(Size::L, 1, dr(1));
    b.dbra(2, loop);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 55u);
}

TEST(CpuFlow, BsrRtsNesting)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto sub1 = b.newLabel();
    auto sub2 = b.newLabel();
    auto done = b.newLabel();
    b.moveq(0, 0);
    b.bsr(sub1);
    b.bra(done);
    b.bind(sub1);
    b.addq(Size::L, 1, dr(0));
    b.bsr(sub2);
    b.addq(Size::L, 1, dr(0));
    b.rts();
    b.bind(sub2);
    b.addq(Size::L, 4, dr(0));
    b.rts();
    b.bind(done);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 6u);
}

TEST(CpuFlow, JsrThroughRegisterIndirect)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto target = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(target);
    b.moveq(42, 6);
    b.rts();
    b.bind(main);
    b.lea(abslbl(target), 0);
    b.jsr(ind(0));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(6), 42u);
}

TEST(CpuFlow, ConditionalBranchTakenAndNot)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto skip = b.newLabel();
    b.moveq(1, 0);
    b.cmpi(Size::L, 1, dr(0));
    b.bcc(Cond::EQ, skip);
    b.moveq(111, 1); // skipped
    b.bind(skip);
    b.moveq(5, 2);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(1), 0u);
    EXPECT_EQ(h.cpu.d(2), 5u);
}

TEST(CpuFlow, LinkUnlkFrame)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.link(6, -8);
    b.move(Size::L, imm(0x1234), disp(6, -4));
    b.move(Size::L, disp(6, -4), dr(0));
    b.unlk(6);
    b.stop(0x2700);
    h.load(b);
    u32 sp0 = h.cpu.a(7);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0x1234u);
    EXPECT_EQ(h.cpu.a(7), sp0); // balanced
}

TEST(CpuFlow, MovemPushPopRoundTrip)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x11), dr(2));
    b.move(Size::L, imm(0x22), dr(3));
    b.movea(Size::L, imm(0x7000), 2);
    // push D2,D3,A2; clobber; pop
    u16 mask = (1u << 2) | (1u << 3) | (1u << (8 + 2));
    b.movemPush(mask);
    b.moveq(0, 2);
    b.moveq(0, 3);
    b.movea(Size::L, imm(0), 2);
    b.movemPop(mask);
    b.stop(0x2700);
    h.load(b);
    u32 sp0 = h.cpu.a(7);
    h.run();
    EXPECT_EQ(h.cpu.d(2), 0x11u);
    EXPECT_EQ(h.cpu.d(3), 0x22u);
    EXPECT_EQ(h.cpu.a(2), 0x7000u);
    EXPECT_EQ(h.cpu.a(7), sp0);
}

TEST(CpuTrap, TrapHookSeesSelector)
{
    CpuHarness h;
    int seenTrap = -1;
    u16 seenSel = 0;
    h.cpu.setTrapHook([&](m68k::Cpu &, int n, u16 sel) {
        seenTrap = n;
        seenSel = sel;
    });
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    // Skip the selector word: pop return PC, add 2, push back.
    b.move(Size::L, disp(7, 2), dr(0));
    b.addq(Size::L, 2, dr(0));
    b.move(Size::L, dr(0), disp(7, 2));
    b.rte();
    b.bind(main);
    b.trapSel(15, 0xBEEF);
    b.moveq(77, 5);
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32((32 + 15) * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(seenTrap, 15);
    EXPECT_EQ(seenSel, 0xBEEF);
    EXPECT_EQ(h.cpu.d(5), 77u); // resumed after the selector word
}

TEST(CpuTrap, IllegalInstructionVector)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    b.moveq(13, 7);
    b.stop(0x2700);
    b.bind(main);
    b.dcw(0x4AFC); // ILLEGAL
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32(4 * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(h.cpu.d(7), 13u);
}

TEST(CpuTrap, PrivilegeViolationFromUserMode)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    b.moveq(21, 7);
    b.stop(0x2700);
    b.bind(main);
    b.lea(absl(0x6000), 0);
    b.moveUsp(0, true);            // USP = 0x6000
    b.moveToSr(imm(0x0000));       // drop to user mode
    b.oriToSr(0x0700);             // privileged: faults
    b.stop(0x2700);                // never reached
    h.load(b);
    h.bus.poke32(8 * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(h.cpu.d(7), 21u);
}

TEST(CpuIrq, AutovectorInterruptWakesStop)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto isr = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(isr);
    b.moveq(55, 6);
    b.rte();
    b.bind(main);
    b.moveq(0, 6);
    b.stop(0x2000); // wait for interrupt, mask 0
    b.moveq(99, 5); // executed after ISR returns
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32((24 + 4) * 4, b.labelAddr(isr));
    // Run until stopped, then raise IRQ level 4.
    h.run();
    EXPECT_TRUE(h.cpu.stopped());
    h.cpu.setIrqLevel(4);
    h.cpu.step(); // take the interrupt
    h.cpu.setIrqLevel(0);
    h.run();
    EXPECT_EQ(h.cpu.d(6), 55u);
    EXPECT_EQ(h.cpu.d(5), 99u);
}

TEST(CpuIrq, MaskedInterruptNotTaken)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.moveq(1, 0);
    b.stop(0x2700); // mask 7
    h.load(b);
    h.run();
    h.cpu.setIrqLevel(3);
    h.cpu.step();
    EXPECT_TRUE(h.cpu.stopped()); // level 3 < mask 7
}

TEST(CpuCycles, BusTransactionsDominateTiming)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.nop(); // one fetch: 4 cycles
    b.stop(0x2700);
    h.load(b);
    Cycles c = h.cpu.step();
    EXPECT_EQ(c, 4u);
}

TEST(CpuCycles, CyclesAccumulate)
{
    CpuHarness h;
    auto b = test::codeAt();
    for (int i = 0; i < 10; ++i)
        b.nop();
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_GE(h.cpu.totalCycles(), 40u);
    EXPECT_EQ(h.cpu.instructionsRetired(), 11u);
}

} // namespace
} // namespace pt
