/**
 * @file
 * Extended MC68000 instruction coverage: condition-code sweeps for
 * Scc/Bcc (parameterized), shifts and rotates with flag semantics,
 * extended arithmetic (ADDX/SUBX/CMPM), BCD, MOVEP, EXG, TAS, CHK,
 * and division overflow.
 */

#include <gtest/gtest.h>

#include "m68k/codebuilder.h"
#include "m68k/cpu.h"
#include "testutil.h"

namespace pt
{
namespace
{

using m68k::CodeBuilder;
using m68k::Cond;
using m68k::Size;
using m68k::Sr;
using test::CpuHarness;
using namespace m68k::ops;

/** Runs a snippet and returns D0 afterwards. */
u32
runForD0(const std::function<void(CodeBuilder &)> &emit)
{
    CpuHarness h;
    auto b = test::codeAt();
    emit(b);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_FALSE(h.cpu.halted());
    return h.cpu.d(0);
}

// --- conditions ------------------------------------------------------

struct CondCase
{
    Cond cond;
    u32 lhs, rhs;  // CMP.L #rhs,lhs-in-d1 evaluates d1 - rhs
    bool expectTrue;
    const char *name;
};

class CondSweep : public testing::TestWithParam<CondCase>
{
};

TEST_P(CondSweep, SccMatchesComparisonSemantics)
{
    const auto &p = GetParam();
    u32 d0 = runForD0([&](CodeBuilder &b) {
        b.moveq(0, 0); // before the compare: MOVEQ clobbers flags
        b.move(Size::L, imm(p.lhs), dr(1));
        b.cmpi(Size::L, p.rhs, dr(1));
        b.scc(p.cond, dr(0)); // 0xFF when true
    });
    EXPECT_EQ((d0 & 0xFF) == 0xFF, p.expectTrue) << p.name;
}

TEST_P(CondSweep, BccMatchesComparisonSemantics)
{
    const auto &p = GetParam();
    u32 d0 = runForD0([&](CodeBuilder &b) {
        auto taken = b.newLabel();
        auto done = b.newLabel();
        b.move(Size::L, imm(p.lhs), dr(1));
        b.cmpi(Size::L, p.rhs, dr(1));
        b.bcc(p.cond, taken);
        b.moveq(0, 0);
        b.bra(done);
        b.bind(taken);
        b.moveq(1, 0);
        b.bind(done);
    });
    EXPECT_EQ(d0 == 1, p.expectTrue) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Comparisons, CondSweep,
    testing::Values(
        CondCase{Cond::EQ, 5, 5, true, "eq-equal"},
        CondCase{Cond::EQ, 5, 6, false, "eq-diff"},
        CondCase{Cond::NE, 5, 6, true, "ne-diff"},
        CondCase{Cond::NE, 5, 5, false, "ne-equal"},
        CondCase{Cond::HI, 6, 5, true, "hi-above"},
        CondCase{Cond::HI, 5, 5, false, "hi-equal"},
        CondCase{Cond::LS, 5, 5, true, "ls-equal"},
        CondCase{Cond::LS, 6, 5, false, "ls-above"},
        CondCase{Cond::CC, 6, 5, true, "cc-nocarry"},
        CondCase{Cond::CS, 5, 6, true, "cs-borrow"},
        CondCase{Cond::GT, 6, 5, true, "gt-above"},
        CondCase{Cond::GT, 5, 0xFFFFFFFF, true, "gt-vs-neg"},
        CondCase{Cond::LT, 0xFFFFFFFF, 5, true, "lt-neg"},
        CondCase{Cond::GE, 5, 5, true, "ge-equal"},
        CondCase{Cond::LE, 0xFFFFFFFE, 0xFFFFFFFF, true, "le-neg"},
        CondCase{Cond::MI, 0x80000000, 0, true, "mi-negresult"},
        CondCase{Cond::PL, 5, 3, true, "pl-positive"},
        CondCase{Cond::VS, 0x80000000, 1, true, "vs-overflow"},
        CondCase{Cond::VC, 5, 1, true, "vc-clean"}),
    [](const testing::TestParamInfo<CondCase> &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// --- shifts and rotates ------------------------------------------------

TEST(CpuShift, LslShiftsOutIntoCarryAndX)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x80000001), dr(0));
    b.lsl(Size::L, 1, 0);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 2u);
    u16 ccr = h.bus.peek16(0xF00);
    EXPECT_TRUE(ccr & Sr::C);
    EXPECT_TRUE(ccr & Sr::X);
}

TEST(CpuShift, AsrPreservesSign)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x80000000), dr(0));
        b.asr(Size::L, 4, 0);
    });
    EXPECT_EQ(d0, 0xF8000000u);
}

TEST(CpuShift, LsrIsLogical)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x80000000), dr(0));
        b.lsr(Size::L, 4, 0);
    });
    EXPECT_EQ(d0, 0x08000000u);
}

TEST(CpuShift, AslSetsOverflowWhenSignChanges)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x40000000), dr(0));
    b.asl(Size::L, 1, 0); // sign flips 0 -> 1
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::V);
}

TEST(CpuShift, RotateWrapsBits)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x80000001), dr(0));
        b.rol(Size::L, 1, 0);
    });
    EXPECT_EQ(d0, 0x00000003u);
    u32 d0r = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x80000001), dr(0));
        b.ror(Size::L, 1, 0);
    });
    EXPECT_EQ(d0r, 0xC0000000u);
}

TEST(CpuShift, CountFromRegisterModulo64)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0xFF), dr(0));
        b.move(Size::L, imm(68), dr(1)); // 68 % 64 = 4
        b.lslr(Size::L, 1, 0, true);
    });
    EXPECT_EQ(d0, 0xFF0u);
}

TEST(CpuShift, WordShiftOnlyTouchesLowWord)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0xAAAA1111), dr(0));
        b.lsl(Size::W, 4, 0);
    });
    EXPECT_EQ(d0, 0xAAAA1110u);
}

// --- extended arithmetic ------------------------------------------------

TEST(CpuExtended, AddxPropagatesCarryAcrossWords)
{
    // 64-bit add: 0x00000001_FFFFFFFF + 0x00000000_00000001.
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0xFFFFFFFF), dr(0)); // low a
    b.move(Size::L, imm(1), dr(1));          // high a
    b.move(Size::L, imm(1), dr(2));          // low b
    b.move(Size::L, imm(0), dr(3));          // high b
    b.add(Size::L, dr(2), dr(0));            // low: sets X
    // ADDX.L D3,D1
    b.dcw(0xD383);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0u);
    EXPECT_EQ(h.cpu.d(1), 2u);
}

TEST(CpuExtended, SubxBorrowsAcrossWords)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0), dr(0));  // low a
    b.move(Size::L, imm(2), dr(1));  // high a
    b.move(Size::L, imm(1), dr(2));  // low b
    b.move(Size::L, imm(0), dr(3));  // high b
    b.sub(Size::L, dr(2), dr(0));    // low: borrow, X set
    // SUBX.L D3,D1
    b.dcw(0x9383);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0xFFFFFFFFu);
    EXPECT_EQ(h.cpu.d(1), 1u);
}

TEST(CpuExtended, CmpmComparesPostincrement)
{
    CpuHarness h;
    h.bus.poke32(0x2000, 0x11112222);
    h.bus.poke32(0x3000, 0x11112222);
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x2000), 0);
    b.movea(Size::L, imm(0x3000), 1);
    // CMPM.L (A0)+,(A1)+
    b.dcw(0xB388);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::Z);
    EXPECT_EQ(h.cpu.a(0), 0x2004u);
    EXPECT_EQ(h.cpu.a(1), 0x3004u);
}

TEST(CpuExtended, DivuOverflowSetsVAndLeavesOperand)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x00FF0000), dr(0));
    b.move(Size::L, imm(1), dr(1));
    b.divu(dr(1), 0); // quotient 0xFF0000 > 0xFFFF: overflow
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0), 0x00FF0000u); // unchanged
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::V);
}

TEST(CpuExtended, MulsIsSigned)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0xFFFF), dr(0)); // -1 as word
        b.move(Size::L, imm(5), dr(1));
        // MULS.W D1,D0
        b.dcw(0xC1C1);
    });
    EXPECT_EQ(d0, 0xFFFFFFFBu); // -5
}

// --- BCD -----------------------------------------------------------------

TEST(CpuBcd, AbcdAddsPackedDecimal)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x19), dr(0)); // 19
        b.move(Size::L, imm(0x23), dr(1)); // 23
        b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF)); // clear X
        // ABCD D1,D0
        b.dcw(0xC101);
    });
    EXPECT_EQ(d0 & 0xFF, 0x42u);
}

TEST(CpuBcd, SbcdSubtractsPackedDecimal)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x42), dr(0));
        b.move(Size::L, imm(0x17), dr(1));
        b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF));
        // SBCD D1,D0
        b.dcw(0x8101);
    });
    EXPECT_EQ(d0 & 0xFF, 0x25u);
}

TEST(CpuBcd, AbcdCarryChains)
{
    // 99 + 01 = 00 carry 1.
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x99), dr(0));
    b.move(Size::L, imm(0x01), dr(1));
    b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF));
    b.dcw(0xC101); // ABCD D1,D0
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(0) & 0xFF, 0x00u);
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::C);
    EXPECT_TRUE(h.bus.peek16(0xF00) & Sr::X);
}

// --- misc ------------------------------------------------------------------

TEST(CpuMisc, ExgSwapsRegisters)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.move(Size::L, imm(0x11), dr(2));
    b.move(Size::L, imm(0x22), dr(3));
    b.exg(dr(2), dr(3));
    b.movea(Size::L, imm(0x1000), 2);
    b.movea(Size::L, imm(0x2000), 3);
    b.exg(ar(2), ar(3));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(2), 0x22u);
    EXPECT_EQ(h.cpu.d(3), 0x11u);
    EXPECT_EQ(h.cpu.a(2), 0x2000u);
    EXPECT_EQ(h.cpu.a(3), 0x1000u);
}

TEST(CpuMisc, MovepTransfersAlternateBytes)
{
    CpuHarness h;
    auto b = test::codeAt();
    b.movea(Size::L, imm(0x2000), 0);
    b.move(Size::L, imm(0x12345678), dr(1));
    // MOVEP.L D1,0(A0)
    b.dcw(0x03C8);
    b.dcw(0x0000);
    // MOVEP.L 0(A0),D2
    b.dcw(0x0548);
    b.dcw(0x0000);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek8(0x2000), 0x12);
    EXPECT_EQ(h.bus.peek8(0x2002), 0x34);
    EXPECT_EQ(h.bus.peek8(0x2004), 0x56);
    EXPECT_EQ(h.bus.peek8(0x2006), 0x78);
    EXPECT_EQ(h.cpu.d(2), 0x12345678u);
}

TEST(CpuMisc, TasSetsHighBitAtomically)
{
    CpuHarness h;
    h.bus.poke8(0x2000, 0x01);
    auto b = test::codeAt();
    // TAS $2000
    b.dcw(0x4AF9);
    b.dcl(0x2000);
    b.moveFromSr(absl(0xF00));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek8(0x2000), 0x81);
    EXPECT_FALSE(h.bus.peek16(0xF00) & Sr::N); // tested value 0x01
    EXPECT_FALSE(h.bus.peek16(0xF00) & Sr::Z);
}

TEST(CpuMisc, ChkTrapsWhenOutOfBounds)
{
    CpuHarness h;
    auto b = test::codeAt();
    auto handler = b.newLabel();
    auto main = b.newLabel();
    b.bra(main);
    b.bind(handler);
    b.moveq(66, 7);
    b.stop(0x2700);
    b.bind(main);
    b.move(Size::L, imm(50), dr(1)); // bound
    b.move(Size::L, imm(10), dr(0)); // within: no trap
    // CHK.W D1,D0
    b.dcw(0x4181);
    b.move(Size::L, imm(99), dr(0)); // out of bounds
    b.dcw(0x4181);
    b.stop(0x2700);
    h.load(b);
    h.bus.poke32(6 * 4, b.labelAddr(handler));
    h.run();
    EXPECT_EQ(h.cpu.d(7), 66u);
}

TEST(CpuMisc, NbcdNegatesDecimal)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.move(Size::L, imm(0x25), dr(0));
        b.andiToSr(static_cast<u16>(~Sr::X & 0xFFFF));
        // NBCD D0 (0 - 25 = 75 borrow)
        b.dcw(0x4800);
    });
    EXPECT_EQ(d0 & 0xFF, 0x75u);
}

TEST(CpuMisc, BitOpsOnMemoryAreByteWide)
{
    CpuHarness h;
    h.bus.poke8(0x2000, 0x00);
    auto b = test::codeAt();
    b.bset(3, absl(0x2000));
    b.bset(6, absl(0x2000));
    b.bclr(3, absl(0x2000));
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.bus.peek8(0x2000), 0x40);
}

TEST(CpuMisc, DynamicBitOpUsesRegisterModulo32)
{
    u32 d0 = runForD0([](CodeBuilder &b) {
        b.moveq(0, 0);
        b.move(Size::L, imm(35), dr(1)); // 35 % 32 = 3
        // BSET D1,D0
        b.dcw(0x03C0);
    });
    EXPECT_EQ(d0, 8u);
}

} // namespace
} // namespace pt
