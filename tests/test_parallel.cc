/**
 * @file
 * The determinism-proving differential harness for the parallel
 * engines. The contract (src/cache/cache.h): per-config results are
 * bit-identical for any job count, because each shard consumes the
 * full reference stream in arrival order with its own seeded RNG.
 *
 * Every test here replays identical inputs through the sequential
 * baseline (jobs = 1) and the parallel paths (jobs = 2 and 8) and
 * demands exact equality — integer hit/miss/eviction counts and
 * bit-equal derived doubles (miss rates, Eq 2 times, energy totals).
 * FIFO and Random configurations ride along to prove replacement
 * randomness comes from the per-shard seed, never the schedule.
 */

#include <vector>

#include <gtest/gtest.h>

#include "base/threadpool.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "workload/desktoptrace.h"
#include "workload/sessionrunner.h"

namespace pt
{
namespace
{

using cache::Cache;
using cache::CacheConfig;
using cache::CacheStats;
using cache::CacheSweep;
using cache::Policy;

/** The 56 paper configs plus FIFO/Random variants (schedule-sensitive
 *  if the per-shard RNG seeding were wrong). */
std::vector<CacheConfig>
sweepConfigs()
{
    std::vector<CacheConfig> configs = CacheSweep::paper56();
    configs.push_back({4096, 32, 2, Policy::Fifo});
    configs.push_back({1024, 16, 4, Policy::Fifo});
    configs.push_back({4096, 32, 2, Policy::Random});
    configs.push_back({1024, 16, 4, Policy::Random});
    configs.push_back({256, 16, 8, Policy::Random});
    return configs;
}

struct Ref
{
    Addr addr;
    bool isFlash;
};

/** A deterministic RAM/flash-classified stream with locality, long
 *  enough to cross several kBatchRefs flush boundaries. */
std::vector<Ref>
referenceStream()
{
    std::vector<Ref> refs;
    const std::size_t n = 3 * CacheSweep::kBatchRefs + 137;
    refs.reserve(n);
    workload::DesktopTraceConfig tc;
    tc.refs = n;
    tc.seed = 777;
    workload::DesktopTraceGen gen(tc);
    u64 i = 0;
    gen.generate([&](Addr a, u8) {
        // Roughly two thirds flash, like the measured sessions.
        refs.push_back({a, i % 3 != 0});
        ++i;
    });
    refs.resize(n);
    return refs;
}

std::vector<Cache>
runSweep(const std::vector<CacheConfig> &configs,
         const std::vector<Ref> &refs, unsigned jobs)
{
    CacheSweep sweep(configs, jobs);
    for (const Ref &r : refs)
        sweep.feed(r.addr, r.isFlash);
    sweep.finish();
    return sweep.caches();
}

void
expectIdentical(const std::vector<Cache> &seq,
                const std::vector<Cache> &par, unsigned jobs)
{
    ASSERT_EQ(seq.size(), par.size());
    cache::EnergyModel energy;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const CacheStats &a = seq[i].stats();
        const CacheStats &b = par[i].stats();
        const std::string where = seq[i].config().name() + "/" +
                                  cache::policyName(
                                      seq[i].config().policy) +
                                  " at jobs=" + std::to_string(jobs);
        EXPECT_EQ(a.accesses, b.accesses) << where;
        EXPECT_EQ(a.misses, b.misses) << where;
        EXPECT_EQ(a.evictions, b.evictions) << where;
        EXPECT_EQ(a.ramAccesses, b.ramAccesses) << where;
        EXPECT_EQ(a.ramMisses, b.ramMisses) << where;
        EXPECT_EQ(a.flashAccesses, b.flashAccesses) << where;
        EXPECT_EQ(a.flashMisses, b.flashMisses) << where;
        // Bit-equal inputs must give bit-equal derived quantities.
        EXPECT_EQ(a.missRate(), b.missRate()) << where;
        EXPECT_EQ(a.avgAccessTimePaper(), b.avgAccessTimePaper())
            << where;
        EXPECT_EQ(energy.cachedEnergyMj(a), energy.cachedEnergyMj(b))
            << where;
        EXPECT_EQ(energy.savings(a), energy.savings(b)) << where;
    }
}

TEST(ParallelSweep, BitIdenticalAcrossJobCounts)
{
    const std::vector<CacheConfig> configs = sweepConfigs();
    const std::vector<Ref> refs = referenceStream();
    const std::vector<Cache> seq = runSweep(configs, refs, 1);
    for (unsigned jobs : {2u, 8u}) {
        SCOPED_TRACE(jobs);
        expectIdentical(seq, runSweep(configs, refs, jobs), jobs);
    }
}

TEST(ParallelSweep, RepeatedParallelRunsAgreeWithThemselves)
{
    // Two identical parallel runs must agree exactly — schedules
    // differ between runs, results must not.
    const std::vector<CacheConfig> configs = sweepConfigs();
    const std::vector<Ref> refs = referenceStream();
    expectIdentical(runSweep(configs, refs, 8),
                    runSweep(configs, refs, 8), 8);
}

TEST(ParallelSweep, PartialBatchOnlyStillFlushesOnFinish)
{
    // Fewer references than one batch: finish() must flush them.
    std::vector<CacheConfig> configs = sweepConfigs();
    CacheSweep sweep(configs, 2);
    for (int i = 0; i < 100; ++i)
        sweep.feed(static_cast<Addr>(i * 16), i % 2 == 0);
    sweep.finish();
    for (const auto &c : sweep.caches())
        EXPECT_EQ(c.stats().accesses, 100u);
    // finish() is idempotent.
    sweep.finish();
    for (const auto &c : sweep.caches())
        EXPECT_EQ(c.stats().accesses, 100u);
}

TEST(ParallelSweep, SharedPoolPathMatchesPinnedPools)
{
    // jobs = 0 routes through the process-shared pool; the results
    // must match the pinned-pool and sequential paths.
    const std::vector<CacheConfig> configs = sweepConfigs();
    const std::vector<Ref> refs = referenceStream();
    const std::vector<Cache> seq = runSweep(configs, refs, 1);
    setDefaultJobs(4);
    expectIdentical(seq, runSweep(configs, refs, 0), 0);
    setDefaultJobs(0);
}

TEST(ParallelSessions, BatchIdenticalAcrossJobCounts)
{
    // Whole collect+replay pipelines fanned out: every measured
    // quantity must be independent of the job count.
    std::vector<workload::SessionSpec> specs =
        workload::table1Specs(0.05);
    ASSERT_EQ(specs.size(), 4u);

    std::vector<workload::SessionRunResult> seq =
        workload::runSessionsParallel(specs, 1);
    std::vector<workload::SessionRunResult> par =
        workload::runSessionsParallel(specs, 2);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(seq[i].name);
        EXPECT_EQ(seq[i].session.log.records.size(),
                  par[i].session.log.records.size());
        EXPECT_EQ(seq[i].session.finalState.fingerprint(),
                  par[i].session.finalState.fingerprint());
        EXPECT_EQ(seq[i].replay.refs.ramRefs(),
                  par[i].replay.refs.ramRefs());
        EXPECT_EQ(seq[i].replay.refs.flashRefs(),
                  par[i].replay.refs.flashRefs());
        EXPECT_EQ(seq[i].replay.instructions,
                  par[i].replay.instructions);
        EXPECT_EQ(seq[i].replay.cycles, par[i].replay.cycles);
        EXPECT_EQ(seq[i].replay.finalState.fingerprint(),
                  par[i].replay.finalState.fingerprint());
    }
}

} // namespace
} // namespace pt
