/**
 * @file
 * Peripheral and snapshot edge-case tests: register byte-merge
 * semantics, interrupt mask/ack behaviour, timer compare, RLE
 * serialization corners, and SnapshotBus reads.
 */

#include <gtest/gtest.h>

#include "device/device.h"
#include "device/snapshot.h"

namespace pt
{
namespace
{

using device::Device;
using device::Irq;
using device::kTimerDisarmed;
using device::Reg;
using device::Snapshot;

TEST(IoRegs, IntMaskSuppressesLevel)
{
    Device dev;
    auto &io = dev.io();
    io.raiseIrq(Irq::Pen);
    EXPECT_EQ(io.irqLevel(), 5);
    io.writeReg(Reg::IntMask, Irq::Pen);
    EXPECT_EQ(io.irqLevel(), 0);
    io.writeReg(Reg::IntMask, 0);
    EXPECT_EQ(io.irqLevel(), 5);
    io.writeReg(Reg::IntAck, Irq::Pen);
    EXPECT_EQ(io.irqLevel(), 0);
}

TEST(IoRegs, PriorityOrdering)
{
    Device dev;
    auto &io = dev.io();
    io.raiseIrq(Irq::Serial);
    io.raiseIrq(Irq::Button);
    io.raiseIrq(Irq::Pen);
    io.raiseIrq(Irq::Timer);
    EXPECT_EQ(io.irqLevel(), 6);
    io.writeReg(Reg::IntAck, Irq::Timer);
    EXPECT_EQ(io.irqLevel(), 5);
    io.writeReg(Reg::IntAck, Irq::Pen);
    EXPECT_EQ(io.irqLevel(), 4);
    io.writeReg(Reg::IntAck, Irq::Button);
    EXPECT_EQ(io.irqLevel(), 3);
}

TEST(IoRegs, TimerCompareWordHalves)
{
    Device dev;
    auto &io = dev.io();
    io.writeReg(Reg::TimerCmp, 0x1234);
    io.writeReg(Reg::TimerCmp + 2, 0x5678);
    EXPECT_EQ(io.timerCompare(), 0x12345678u);
    EXPECT_EQ(io.readReg(Reg::TimerCmp), 0x1234u);
    EXPECT_EQ(io.readReg(Reg::TimerCmp + 2), 0x5678u);
    io.reset();
    EXPECT_EQ(io.timerCompare(), kTimerDisarmed);
}

TEST(IoRegs, TimerFiresAtOrAfterCompare)
{
    Device dev;
    auto &io = dev.io();
    io.writeReg(Reg::TimerCmp, 0);
    io.writeReg(Reg::TimerCmp + 2, 10);
    io.tickAdvanced(9);
    EXPECT_FALSE(io.activeIrqs() & Irq::Timer);
    io.tickAdvanced(10);
    EXPECT_TRUE(io.activeIrqs() & Irq::Timer);
}

TEST(IoRegs, MmioByteWriteMergesWithWord)
{
    Device dev;
    // Byte-write the high half of IntMask through the bus.
    dev.bus().write8(device::kMmioBase + Reg::IntMask,
                     0x12); // high byte
    dev.bus().write8(device::kMmioBase + Reg::IntMask + 1,
                     0x34); // low byte
    EXPECT_EQ(dev.io().readReg(Reg::IntMask), 0x1234u);
}

TEST(IoRegs, PenSampleLatchesAndFinalUp)
{
    Device dev;
    auto &io = dev.io();
    EXPECT_FALSE(io.samplePen()); // idle: no interrupt
    io.penTouch(10, 20);
    EXPECT_TRUE(io.samplePen());
    EXPECT_EQ(io.readReg(Reg::PenX), 10u);
    EXPECT_EQ(io.readReg(Reg::PenDown), 1u);
    io.penRelease();
    EXPECT_TRUE(io.samplePen()); // the trailing pen-up sample
    EXPECT_EQ(io.readReg(Reg::PenDown), 0u);
    EXPECT_FALSE(io.samplePen()); // then quiescent
}

TEST(SnapshotEdge, AllZeroImagesCompressTiny)
{
    Snapshot s;
    s.ram.assign(1 << 20, 0);
    s.rom.assign(1 << 16, 0);
    auto bytes = s.serialize();
    EXPECT_LT(bytes.size(), 256u);
    Snapshot back;
    ASSERT_TRUE(Snapshot::deserialize(bytes, back));
    EXPECT_EQ(back.fingerprint(), s.fingerprint());
}

TEST(SnapshotEdge, NoZeroBytes)
{
    Snapshot s;
    s.ram.assign(4096, 0xAB);
    s.rom.assign(512, 0xCD);
    s.rtcBase = 42;
    Snapshot back;
    ASSERT_TRUE(Snapshot::deserialize(s.serialize(), back));
    EXPECT_EQ(back.ram, s.ram);
    EXPECT_EQ(back.rom, s.rom);
    EXPECT_EQ(back.rtcBase, 42u);
}

TEST(SnapshotEdge, TrailingZerosPreserved)
{
    Snapshot s;
    s.ram = {1, 2, 3, 0, 0, 0, 0, 0};
    s.rom = {0, 0, 9};
    Snapshot back;
    ASSERT_TRUE(Snapshot::deserialize(s.serialize(), back));
    EXPECT_EQ(back.ram, s.ram);
    EXPECT_EQ(back.rom, s.rom);
}

TEST(SnapshotEdge, CorruptDataRejected)
{
    Snapshot s;
    s.ram.assign(128, 7);
    s.rom.assign(64, 9);
    auto bytes = s.serialize();
    Snapshot back;
    // Bad magic.
    auto bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(Snapshot::deserialize(bad, back));
    // Truncated payload.
    auto trunc = bytes;
    trunc.resize(trunc.size() / 2);
    EXPECT_FALSE(Snapshot::deserialize(trunc, back));
    // Empty input.
    EXPECT_FALSE(Snapshot::deserialize({}, back));
}

TEST(SnapshotEdge, SnapshotBusReadsBothRegions)
{
    Snapshot s;
    s.ram.assign(0x20000, 0);
    s.rom.assign(0x1000, 0);
    s.ram[0x100] = 0xAB;
    s.rom[0x10] = 0xCD;
    device::SnapshotBus bus(s);
    EXPECT_EQ(bus.peek8(0x100), 0xAB);
    EXPECT_EQ(bus.peek8(device::kRomBase + 0x10), 0xCD);
    EXPECT_EQ(bus.peek8(device::kMmioBase), 0); // MMIO reads as zero
    // Writes and pokes are inert.
    bus.write8(0x100, 0x55);
    bus.poke8(0x100, 0x66);
    EXPECT_EQ(bus.peek8(0x100), 0xAB);
}

TEST(DeviceRun, RunUntilIdleRespectsCycleBudget)
{
    Device dev;
    // No ROM: the CPU fetches zeros and takes an illegal-instruction
    // exception through a null vector, halting. runUntilIdle must not
    // spin forever either way.
    dev.runUntilIdle(1'000'000);
    EXPECT_TRUE(dev.halted() || dev.nowCycles() <= 1'100'000);
}

} // namespace
} // namespace pt
