/**
 * @file
 * Serve-subsystem tests: the resident fleet server and its client.
 *
 * The contract under test is the ISSUE's acceptance bar: a remote
 * fleet's artifacts are byte-identical to a local `palmtrace fleet`
 * of the same specs (at any worker count, across concurrent
 * clients); malformed, truncated, and hostile-length frames earn
 * structured rejections and never kill the server; admission is
 * bounded (Busy backpressure); slow sessions hit their timeout as a
 * structured error; and a drain under load leaves no partial
 * artifacts — finished traces plus a journal a resume completes
 * byte-identically.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/fdio.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "super/jobs.h"
#include "super/journal.h"
#include "workload/sessionrunner.h"

namespace pt
{
namespace
{

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

std::vector<workload::SessionSpec>
serveSpecs(std::size_t n = 3)
{
    std::vector<workload::SessionSpec> specs(n);
    for (std::size_t i = 0; i < n; ++i) {
        specs[i].name = "srv-" + std::to_string(i);
        specs[i].config.seed = 90 + i;
        specs[i].config.interactions = 3;
        specs[i].config.meanIdleTicks = 1'500;
    }
    return specs;
}

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    std::size_t at = 0;
    while ((at = s.find(from, at)) != std::string::npos) {
        s.replace(at, from.size(), to);
        at += to.size();
    }
    return s;
}

std::string
str(const std::vector<u8> &b)
{
    return std::string(b.begin(), b.end());
}

/** Raw protocol-level client socket (the hostile-input harness). */
int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Runs the remote fleet against @p socketPath and checks that every
 *  trace and the CSV match the local reference run byte for byte. */
void
expectRemoteMatchesLocal(const std::string &socketPath,
                         const std::vector<workload::SessionSpec> &specs,
                         const std::string &remoteBase,
                         const std::string &localBase,
                         const std::vector<u8> &localCsv)
{
    serve::ClientOptions co;
    co.endpoint = socketPath;
    super::JobOptions jo;
    auto res = serve::runRemoteFleet(specs, remoteBase, co, jo);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_FALSE(res.degraded) << res.super.firstError;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto remote =
            readFileBytes(super::fleetTracePath(remoteBase, i));
        auto local = readFileBytes(super::fleetTracePath(localBase, i));
        ASSERT_FALSE(local.empty());
        EXPECT_EQ(remote, local) << "trace " << i << " differs";
    }
    EXPECT_EQ(str(readFileBytes(remoteBase + ".csv")),
              replaceAll(str(localCsv), localBase, remoteBase));
}

TEST(ServeRoundTrip, ByteIdenticalToLocalFleetAtJobs1And8)
{
    auto specs = serveSpecs();
    const std::string localBase = tmpFile("serve_local");
    super::JobOptions ljo;
    ljo.jobs = 2;
    auto local = super::runFleetJob(specs, localBase, ljo);
    ASSERT_TRUE(local.ok) << local.error;
    auto localCsv = readFileBytes(localBase + ".csv");
    ASSERT_FALSE(localCsv.empty());

    for (unsigned jobs : {1u, 8u}) {
        serve::ServeOptions so;
        so.socketPath = tmpFile("serve_rt_" + std::to_string(jobs) +
                                ".sock");
        so.jobs = jobs;
        serve::Server server(so);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;

        expectRemoteMatchesLocal(
            so.socketPath, specs,
            tmpFile("serve_remote_j" + std::to_string(jobs)),
            localBase, localCsv);

        auto st = server.stop();
        EXPECT_EQ(st.sessionsDone, specs.size());
        EXPECT_EQ(st.sessionsFailed, 0u);
        EXPECT_EQ(st.badFrames, 0u);
    }
}

TEST(ServeRoundTrip, ConcurrentClientsAllByteIdentical)
{
    auto specs = serveSpecs(2);
    const std::string localBase = tmpFile("serve_cc_local");
    super::JobOptions ljo;
    ljo.jobs = 2;
    auto local = super::runFleetJob(specs, localBase, ljo);
    ASSERT_TRUE(local.ok) << local.error;
    auto localCsv = readFileBytes(localBase + ".csv");

    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_cc.sock");
    so.jobs = 4;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    constexpr int kClients = 3;
    std::vector<super::JobResult> results(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            serve::ClientOptions co;
            co.endpoint = so.socketPath;
            results[c] = serve::runRemoteFleet(
                specs, tmpFile("serve_cc_r" + std::to_string(c)), co,
                super::JobOptions{});
        });
    }
    for (auto &t : clients)
        t.join();

    for (int c = 0; c < kClients; ++c) {
        ASSERT_TRUE(results[c].ok) << results[c].error;
        const std::string base = tmpFile("serve_cc_r" + std::to_string(c));
        for (std::size_t i = 0; i < specs.size(); ++i) {
            EXPECT_EQ(readFileBytes(super::fleetTracePath(base, i)),
                      readFileBytes(
                          super::fleetTracePath(localBase, i)))
                << "client " << c << " trace " << i;
        }
        EXPECT_EQ(str(readFileBytes(base + ".csv")),
                  replaceAll(str(localCsv), localBase, base));
    }
    auto st = server.stop();
    EXPECT_EQ(st.sessionsDone, specs.size() * kClients);
    EXPECT_EQ(st.connections, static_cast<u64>(kClients));
}

TEST(ServeProtocol, EveryHandshakeByteFlipIsARejection)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_flip.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    const std::vector<u8> good =
        serve::packFrame(serve::MsgType::Hello, serve::encodeHello());

    for (std::size_t flip = 0; flip < good.size(); ++flip) {
        std::vector<u8> frame = good;
        frame[flip] ^= 0xFF;
        int fd = connectUnix(so.socketPath);
        ASSERT_GE(fd, 0) << "server died before flip " << flip;
        ASSERT_TRUE(io::writeFull(fd, frame.data(), frame.size()));
        // No more bytes are coming: a flipped length that asks for a
        // bigger payload must resolve as a short read, not a hang.
        ::shutdown(fd, SHUT_WR);

        serve::MsgType type{};
        std::vector<u8> payload;
        auto r = serve::recvFrame(fd, type, payload);
        if (r.ok()) {
            // A structured rejection: the error frame names the
            // violated field, and the connection then closes.
            EXPECT_EQ(type, serve::MsgType::Error)
                << "flip " << flip << " got "
                << serve::msgTypeName(type);
            serve::ErrorMsg em;
            EXPECT_TRUE(serve::ErrorMsg::decode(payload, em).ok());
            EXPECT_FALSE(em.err.field.empty());
        }
        // Either way the server must close rather than misparse.
        u8 byte;
        while (io::readFull(fd, &byte, 1)) {
        }
        ::close(fd);
    }

    // The server survived 24 hostile clients: a well-formed session
    // still round-trips.
    auto specs = serveSpecs(1);
    serve::ClientOptions co;
    co.endpoint = so.socketPath;
    auto res = serve::runRemoteFleet(specs, tmpFile("serve_flip_ok"),
                                     co, super::JobOptions{});
    EXPECT_TRUE(res.ok) << res.error;

    auto st = server.stop();
    EXPECT_EQ(st.badFrames, good.size());
    EXPECT_EQ(st.sessionsDone, 1u);
}

TEST(ServeProtocol, HostileLengthIsRejectedBeforeAllocation)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_len.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // A header claiming a ~2 GiB payload. The server must reject it
    // from the length field alone — a structured "payloadLen" error,
    // no allocation, no waiting for bytes that will never come.
    BinWriter w;
    w.put32(serve::kFrameMagic);
    w.put32(static_cast<u32>(serve::MsgType::Hello));
    w.put32(0x7FFFFFFFu);
    w.put64(0);
    const std::vector<u8> hdr = w.takeBytes();

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(io::writeFull(fd, hdr.data(), hdr.size()));

    serve::MsgType type{};
    std::vector<u8> payload;
    auto r = serve::recvFrame(fd, type, payload);
    ASSERT_TRUE(r.ok()) << r.message();
    ASSERT_EQ(type, serve::MsgType::Error);
    serve::ErrorMsg em;
    ASSERT_TRUE(serve::ErrorMsg::decode(payload, em).ok());
    EXPECT_EQ(em.err.field, "payloadLen");
    ::close(fd);

    auto st = server.stop();
    EXPECT_EQ(st.badFrames, 1u);
}

TEST(ServeProtocol, TruncatedSubmitPayloadIsAStructuredError)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_trunc.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Hello,
                                 serve::encodeHello()));
    serve::MsgType type{};
    std::vector<u8> payload;
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::HelloOk);

    // A frame-valid Submit whose payload is cut mid-spec: framing
    // passes (checksum over the short bytes), structure must not.
    serve::SubmitMsg sub;
    sub.jobId = 1;
    sub.blockCapacity = 16;
    sub.spec = serveSpecs(1)[0];
    std::vector<u8> whole = sub.encode();
    whole.resize(whole.size() / 2);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Submit, whole));

    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::Error);
    serve::ErrorMsg em;
    ASSERT_TRUE(serve::ErrorMsg::decode(payload, em).ok());
    EXPECT_FALSE(em.err.field.empty());
    ::close(fd);
    server.stop();
}

TEST(AdmissionBackpressure, QueueFullEarnsStructuredBusy)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_busy.sock");
    so.jobs = 1;
    so.maxSessions = 1; // one slot: the third submit must bounce
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Hello,
                                 serve::encodeHello()));
    serve::MsgType type{};
    std::vector<u8> payload;
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::HelloOk);

    auto submit = [&](u64 jobId) {
        serve::SubmitMsg sub;
        sub.jobId = jobId;
        sub.blockCapacity = trace::kPackedDefaultBlockCapacity;
        sub.spec = serveSpecs(1)[0];
        ASSERT_TRUE(
            serve::sendFrame(fd, serve::MsgType::Submit, sub.encode()));
    };

    // Job 1 occupies the worker (give it time to dequeue), job 2
    // fills the queue's one slot, jobs 3 and 4 must earn Busy.
    submit(1);
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::Accepted);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    submit(2);
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::Accepted);
    submit(3);
    submit(4);

    unsigned busySeen = 0;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
        ASSERT_EQ(type, serve::MsgType::Busy);
        serve::BusyMsg busy;
        ASSERT_TRUE(serve::BusyMsg::decode(payload, busy).ok());
        EXPECT_EQ(busy.field, "queue");
        EXPECT_EQ(busy.reason, "queue full");
        EXPECT_TRUE(busy.jobId == 3 || busy.jobId == 4);
        ++busySeen;
    }
    EXPECT_EQ(busySeen, 2u);
    ::close(fd); // jobs 1 and 2 stream into a dead socket; fine

    auto st = server.stop();
    EXPECT_EQ(st.sessionsRejected, 2u);
}

TEST(AdmissionBackpressure, SessionTimeoutIsAStructuredError)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_timeout.sock");
    so.jobs = 1;
    so.sessionTimeoutMs = 1; // every session blows this deadline
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Hello,
                                 serve::encodeHello()));
    serve::MsgType type{};
    std::vector<u8> payload;
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::HelloOk);

    serve::SubmitMsg sub;
    sub.jobId = 1;
    sub.blockCapacity = trace::kPackedDefaultBlockCapacity;
    sub.spec = serveSpecs(1)[0];
    ASSERT_TRUE(
        serve::sendFrame(fd, serve::MsgType::Submit, sub.encode()));
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::Accepted);

    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::Error);
    serve::ErrorMsg em;
    ASSERT_TRUE(serve::ErrorMsg::decode(payload, em).ok());
    EXPECT_EQ(em.err.field, "session");
    EXPECT_NE(em.err.reason.find("timeout"), std::string::npos)
        << em.err.reason;
    ::close(fd);

    auto st = server.stop();
    EXPECT_EQ(st.sessionsDone, 0u);
    EXPECT_EQ(st.sessionsFailed, 1u);
}

TEST(ServeStats, GaugesArePublishedAndScrapeable)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_stats.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Run one session so sessions_per_sec has a numerator.
    serve::ClientOptions co;
    co.endpoint = so.socketPath;
    auto res = serve::runRemoteFleet(serveSpecs(1),
                                     tmpFile("serve_stats_out"), co,
                                     super::JobOptions{});
    ASSERT_TRUE(res.ok) << res.error;

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Hello,
                                 serve::encodeHello()));
    serve::MsgType type{};
    std::vector<u8> payload;
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::HelloOk);

    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Stats, {}));
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::StatsOk);
    BinReader r(payload);
    const std::string json = r.getString();
    ASSERT_TRUE(r.ok());
    for (const char *gauge :
         {"serve.active_sessions", "serve.queue_depth",
          "serve.sessions_per_sec", "serve.bytes_streamed",
          "serve.rss"}) {
        EXPECT_NE(json.find(gauge), std::string::npos)
            << "missing " << gauge;
    }
    ::close(fd);
    server.stop();

    obs::Registry &reg = obs::Registry::global();
    EXPECT_GT(reg.gaugeValue("serve.bytes_streamed"), 0.0);
}

TEST(ServeShutdown, ClientShutdownFrameDrainsTheServer)
{
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_shut.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectUnix(so.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Hello,
                                 serve::encodeHello()));
    serve::MsgType type{};
    std::vector<u8> payload;
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::HelloOk);

    ASSERT_TRUE(serve::sendFrame(fd, serve::MsgType::Shutdown, {}));
    ASSERT_TRUE(serve::recvFrame(fd, type, payload).ok());
    ASSERT_EQ(type, serve::MsgType::ShutdownOk);
    ::close(fd);

    // The Shutdown frame requested the drain; waitDrained must now
    // complete without any local requestDrain call.
    auto st = server.waitDrained();
    EXPECT_TRUE(server.draining());
    EXPECT_EQ(st.connections, 1u);
}

TEST(ServeDrain, UnderLoadLeavesNoPartialsAndResumeFinishesByteIdentical)
{
    auto specs = serveSpecs(8);
    const std::string localBase = tmpFile("serve_drain_local");
    super::JobOptions ljo;
    ljo.jobs = 2;
    auto local = super::runFleetJob(specs, localBase, ljo);
    ASSERT_TRUE(local.ok) << local.error;
    auto localCsv = readFileBytes(localBase + ".csv");

    const std::string remoteBase = tmpFile("serve_drain_remote");
    const std::string journal = tmpFile("serve_drain.ptjl");
    const std::string sock1 = tmpFile("serve_drain1.sock");

    // This test asserts on file *absence* (no CSV while interrupted,
    // no .tmp litter), so artifacts surviving from a previous run of
    // the binary in the same temp dir would poison it: scrub first.
    std::remove(journal.c_str());
    std::remove((remoteBase + ".csv").c_str());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string trace = super::fleetTracePath(remoteBase, i);
        std::remove(trace.c_str());
        std::remove((trace + ".tmp").c_str());
    }

    serve::ServeOptions so;
    so.socketPath = sock1;
    so.jobs = 2;
    auto *server = new serve::Server(so);
    std::string err;
    ASSERT_TRUE(server->start(&err)) << err;

    super::JobResult res;
    std::thread client([&] {
        serve::ClientOptions co;
        co.endpoint = sock1;
        super::JobOptions jo;
        jo.journalPath = journal;
        res = serve::runRemoteFleet(specs, remoteBase, co, jo);
    });
    // Let some sessions land, then pull the rug.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server->requestDrain();
    client.join();
    server->waitDrained();
    delete server;

    // No partial artifacts: every surviving trace is finished and
    // byte-identical; no .tmp litter anywhere.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(
            readFileBytes(super::fleetTracePath(remoteBase, i) + ".tmp")
                .empty())
            << "partial .tmp survived for item " << i;
        auto remote =
            readFileBytes(super::fleetTracePath(remoteBase, i));
        if (!remote.empty()) {
            EXPECT_EQ(remote, readFileBytes(
                                  super::fleetTracePath(localBase, i)))
                << "trace " << i << " differs after drain";
        }
    }

    if (res.ok && !res.interrupted) {
        // The drain raced the final JobDone and everything finished:
        // the CSV must already match.
        EXPECT_EQ(str(readFileBytes(remoteBase + ".csv")),
                  replaceAll(str(localCsv), localBase, remoteBase));
        return;
    }
    ASSERT_TRUE(res.interrupted) << res.error;
    EXPECT_TRUE(readFileBytes(remoteBase + ".csv").empty())
        << "an interrupted run must not finalize the CSV";

    // A fresh server + `resume` completes the same bytes.
    const std::string sock2 = tmpFile("serve_drain2.sock");
    serve::ServeOptions so2;
    so2.socketPath = sock2;
    so2.jobs = 2;
    serve::Server server2(so2);
    ASSERT_TRUE(server2.start(&err)) << err;
    auto resumed =
        serve::resumeRemoteFleetJob(journal, sock2, super::JobOptions{});
    server2.stop();
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.super.itemsSkipped + resumed.super.itemsDone,
              specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(readFileBytes(super::fleetTracePath(remoteBase, i)),
                  readFileBytes(super::fleetTracePath(localBase, i)))
            << "trace " << i << " differs after resume";
    }
    EXPECT_EQ(str(readFileBytes(remoteBase + ".csv")),
              replaceAll(str(localCsv), localBase, remoteBase));
}

TEST(ServeProtocol, RemoteFleetJournalIsDetected)
{
    // The CLI's resume dispatch: remote-fleet journals route to the
    // serve client, local fleet journals to the supervisor.
    auto specs = serveSpecs(1);
    const std::string jpath = tmpFile("serve_kind.ptjl");
    serve::ServeOptions so;
    so.socketPath = tmpFile("serve_kind.sock");
    so.jobs = 1;
    serve::Server server(so);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    serve::ClientOptions co;
    co.endpoint = so.socketPath;
    super::JobOptions jo;
    jo.journalPath = jpath;
    auto res = serve::runRemoteFleet(specs, tmpFile("serve_kind_out"),
                                     co, jo);
    server.stop();
    ASSERT_TRUE(res.ok) << res.error;

    EXPECT_TRUE(serve::isRemoteFleetJournal(jpath));
    EXPECT_FALSE(serve::isRemoteFleetJournal(tmpFile("no_such.ptjl")));

    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(jpath, data).ok());
    EXPECT_EQ(data.spec.kind, super::JobKind::RemoteFleet);
    EXPECT_STREQ(super::jobKindName(data.spec.kind), "remote-fleet");
    EXPECT_TRUE(data.hasFooter);
    EXPECT_EQ(data.footer.status, super::JobStatus::Complete);
    EXPECT_EQ(data.footer.outFnv, res.outFnv);

    // A finalized remote journal resumes to nothing-to-do without
    // touching the network (bad endpoint proves it).
    auto done = serve::resumeRemoteFleetJob(jpath, "tcp:1",
                                            super::JobOptions{});
    EXPECT_TRUE(done.ok);
    EXPECT_TRUE(done.nothingToDo);
}

} // namespace
} // namespace pt
