/**
 * @file
 * Golden-file regression test for the paper's Figure 5 (miss rates)
 * and Figure 6 (Eq 2 average access times): a small deterministic
 * session is collected, replayed, and swept through all 56 paper
 * configurations, and every per-config result is compared against
 * tests/golden/fig5_fig6.json.
 *
 * The golden file pins the whole pipeline — user model, emulator,
 * replay, reference classification, cache simulation — so any
 * behavioral drift shows up as a diff against checked-in numbers,
 * not just as a broken trend check in the bench harnesses.
 *
 * Regenerating after an intentional change:
 *
 *   build/tests/test_golden --update-golden
 *
 * rewrites the golden file in the source tree; review the diff and
 * commit it with the change that caused it.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "core/palmsim.h"
#include "trace/memtrace.h"

namespace pt
{
namespace
{

bool gUpdateGolden = false;

std::string
goldenPath()
{
    return std::string(PT_GOLDEN_DIR) + "/fig5_fig6.json";
}

/** One per-config golden row. */
struct GoldenRow
{
    u64 accesses = 0;
    u64 misses = 0;
    u64 evictions = 0;
    double missRate = 0.0;
    double tEff = 0.0;
};

/** The fixed pipeline input: small but long enough to exercise every
 *  cache configuration (tens of thousands of references). */
workload::UserModelConfig
goldenSession()
{
    workload::UserModelConfig cfg;
    cfg.seed = 42;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 5'000;
    return cfg;
}

std::map<std::string, GoldenRow>
computeRows()
{
    core::Session session =
        core::PalmSimulator::collect(goldenSession());
    trace::TraceBuffer refs;
    core::ReplayConfig rc;
    rc.extraRefSink = &refs;
    core::PalmSimulator::replaySession(session, rc);

    // jobs = 1: the sequential baseline defines the golden numbers;
    // test_parallel proves the parallel engine matches it exactly.
    cache::CacheSweep sweep(cache::CacheSweep::paper56(), 1);
    for (const auto &r : refs.records())
        sweep.feed(r.addr, r.cls == 1);
    sweep.finish();

    std::map<std::string, GoldenRow> rows;
    for (const auto &c : sweep.caches()) {
        GoldenRow row;
        row.accesses = c.stats().accesses;
        row.misses = c.stats().misses;
        row.evictions = c.stats().evictions;
        row.missRate = c.stats().missRate();
        row.tEff = c.stats().avgAccessTimePaper();
        rows[c.config().name()] = row;
    }
    return rows;
}

bool
writeGolden(const std::map<std::string, GoldenRow> &rows)
{
    std::FILE *f = std::fopen(goldenPath().c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"schema\": \"palmtrace-golden-fig5-fig6-v1\",\n");
    std::fprintf(f, "  \"session\": {\"seed\": 42, \"interactions\": "
                    "6, \"mean_idle_ticks\": 5000},\n");
    std::fprintf(f, "  \"configs\": [\n");
    std::size_t i = 0;
    for (const auto &[name, r] : rows) {
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"accesses\": %llu, \"misses\": "
            "%llu, \"evictions\": %llu, \"miss_rate\": %.17g, "
            "\"t_eff\": %.17g}%s\n",
            name.c_str(), static_cast<unsigned long long>(r.accesses),
            static_cast<unsigned long long>(r.misses),
            static_cast<unsigned long long>(r.evictions), r.missRate,
            r.tEff, ++i < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
}

bool
readGolden(std::map<std::string, GoldenRow> &rows)
{
    std::FILE *f = std::fopen(goldenPath().c_str(), "rb");
    if (!f)
        return false;
    char line[512];
    while (std::fgets(line, sizeof(line), f)) {
        char name[64];
        unsigned long long accesses, misses, evictions;
        GoldenRow r;
        if (std::sscanf(line,
                        " {\"name\": \"%63[^\"]\", \"accesses\": "
                        "%llu, \"misses\": %llu, \"evictions\": "
                        "%llu, \"miss_rate\": %lg, \"t_eff\": %lg",
                        name, &accesses, &misses, &evictions,
                        &r.missRate, &r.tEff) == 6) {
            r.accesses = accesses;
            r.misses = misses;
            r.evictions = evictions;
            rows[name] = r;
        }
    }
    std::fclose(f);
    return true;
}

TEST(Golden, Fig5MissRatesAndFig6AccessTimes)
{
    std::map<std::string, GoldenRow> measured = computeRows();
    ASSERT_EQ(measured.size(), 56u);

    if (gUpdateGolden) {
        ASSERT_TRUE(writeGolden(measured))
            << "cannot write " << goldenPath();
        std::printf("golden file updated: %s\n", goldenPath().c_str());
        return;
    }

    std::map<std::string, GoldenRow> golden;
    ASSERT_TRUE(readGolden(golden))
        << "cannot read " << goldenPath()
        << " — regenerate with: test_golden --update-golden";
    ASSERT_EQ(golden.size(), 56u)
        << "golden file is incomplete — regenerate with "
           "--update-golden";

    for (const auto &[name, want] : golden) {
        ASSERT_TRUE(measured.count(name)) << name;
        const GoldenRow &got = measured.at(name);
        EXPECT_EQ(got.accesses, want.accesses) << name;
        EXPECT_EQ(got.misses, want.misses) << name;
        EXPECT_EQ(got.evictions, want.evictions) << name;
        // Doubles pass through text with 17 significant digits, so
        // round-tripping is exact; allow only for that formatting.
        EXPECT_NEAR(got.missRate, want.missRate, 1e-15) << name;
        EXPECT_NEAR(got.tEff, want.tEff, 1e-12) << name;
    }
}

} // namespace
} // namespace pt

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--update-golden"))
            pt::gUpdateGolden = true;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
