/**
 * @file
 * Workload tests: synthetic user determinism and session shape, and
 * the desktop trace generator's determinism and locality.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "device/snapshot.h"
#include "os/pilotos.h"
#include "workload/desktoptrace.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

using workload::DesktopTraceConfig;
using workload::DesktopTraceGen;
using workload::UserModel;
using workload::UserModelConfig;

UserModelConfig
tinySession(u64 seed)
{
    UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 4;
    cfg.meanIdleTicks = 2000;
    cfg.meanThinkTicks = 100;
    cfg.meanBurstActions = 3;
    return cfg;
}

TEST(UserModelTest, DeterministicForSeed)
{
    auto run = [](u64 seed) {
        device::Device dev;
        os::setupDevice(dev);
        UserModel user(dev, tinySession(seed));
        user.runSession();
        return device::Snapshot::capture(dev).fingerprint();
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(UserModelTest, PerformsAllActionKinds)
{
    device::Device dev;
    os::setupDevice(dev);
    UserModelConfig cfg = tinySession(11);
    cfg.interactions = 20;
    UserModel user(dev, cfg);
    auto stats = user.runSession();
    EXPECT_GT(stats.strokes, 0u);
    EXPECT_GT(stats.taps, 0u);
    EXPECT_GT(stats.appSwitches, 0u);
    EXPECT_GT(stats.scrollHolds, 0u);
    EXPECT_GT(stats.elapsedTicks, 1000u);
    EXPECT_FALSE(dev.halted());
}

TEST(UserModelTest, IdleGapsDominateElapsedTime)
{
    device::Device dev;
    os::setupDevice(dev);
    UserModelConfig cfg = tinySession(13);
    cfg.interactions = 10;
    cfg.meanIdleTicks = 50'000;
    UserModel user(dev, cfg);
    auto stats = user.runSession();
    // ~10 x 50k idle ticks; instructions should be tiny relative to
    // elapsed cycles (the device dozes).
    EXPECT_GT(stats.elapsedTicks, 100'000u);
    u64 busyCycles = dev.instructionsRetired() * 4;
    EXPECT_LT(busyCycles, dev.nowCycles() / 10);
}

TEST(UserModelTest, Table1PresetsAreDistinct)
{
    const auto *presets = workload::table1Presets();
    std::set<u64> seeds;
    for (int i = 0; i < workload::kTable1SessionCount; ++i) {
        seeds.insert(presets[i].config.seed);
        EXPECT_GT(presets[i].config.interactions, 0u);
    }
    EXPECT_EQ(seeds.size(), 4u);
}

TEST(DesktopTrace, DeterministicForSeed)
{
    auto checksum = [](u64 seed) {
        DesktopTraceConfig cfg;
        cfg.seed = seed;
        cfg.refs = 50'000;
        DesktopTraceGen gen(cfg);
        u64 h = 0;
        gen.generate([&](Addr a, u8 k) { h = h * 31 + a + k; });
        return h;
    };
    EXPECT_EQ(checksum(3), checksum(3));
    EXPECT_NE(checksum(3), checksum(4));
}

TEST(DesktopTrace, EmitsRequestedCountAndMix)
{
    DesktopTraceConfig cfg;
    cfg.refs = 100'000;
    DesktopTraceGen gen(cfg);
    u64 fetches = 0, reads = 0, writes = 0;
    gen.generate([&](Addr, u8 k) {
        if (k == workload::DesktopRef::Fetch)
            ++fetches;
        else if (k == workload::DesktopRef::Read)
            ++reads;
        else
            ++writes;
    });
    EXPECT_EQ(fetches + reads + writes, cfg.refs);
    double ff = static_cast<double>(fetches) / cfg.refs;
    EXPECT_NEAR(ff, cfg.fetchFraction, 0.02);
}

TEST(DesktopTrace, ExhibitsCacheFriendlyLocality)
{
    // A bigger cache must do much better — the working set is finite.
    cache::Cache small(
        {.sizeBytes = 256, .lineBytes = 16, .assoc = 1});
    cache::Cache large(
        {.sizeBytes = 16384, .lineBytes = 32, .assoc = 4});
    DesktopTraceConfig cfg;
    cfg.refs = 500'000;
    DesktopTraceGen gen(cfg);
    gen.generate([&](Addr a, u8) {
        small.access(a, false);
        large.access(a, false);
    });
    EXPECT_GT(small.stats().missRate(), 0.05);
    EXPECT_LT(large.stats().missRate(),
              small.stats().missRate() / 2.0);
    EXPECT_LT(large.stats().missRate(), 0.25);
}

} // namespace
} // namespace pt
