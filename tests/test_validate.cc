/**
 * @file
 * Unit tests for the validation correlators on synthetic inputs: the
 * log correlator's matching, lag and burst accounting, and the
 * final-state correlator's benign/significant classification.
 */

#include <gtest/gtest.h>

#include "hacks/logformat.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using hacks::LogType;
using trace::ActivityLog;
using trace::LogRecord;
using validate::correlateLogs;
using validate::correlateStates;
using validate::DiffClass;

LogRecord
pen(Ticks tick, u16 x, u16 y, bool down)
{
    LogRecord r;
    r.tick = tick;
    r.rtc = tick / 100;
    r.type = LogType::PenPoint;
    r.data = down ? 1 : 0;
    r.extra = (static_cast<u32>(x) << 16) | y;
    r.isLong = true;
    return r;
}

LogRecord
key(Ticks tick, u16 code)
{
    LogRecord r;
    r.tick = tick;
    r.type = LogType::Key;
    r.data = code;
    return r;
}

TEST(LogCorrelator, PerfectReplayPasses)
{
    ActivityLog a, b;
    a.records = {pen(10, 5, 6, true), pen(12, 7, 8, true),
                 pen(14, 7, 8, false), key(30, 8)};
    b.records = a.records;
    auto c = correlateLogs(a, b);
    EXPECT_TRUE(c.pass());
    EXPECT_EQ(c.matchedEvents, 4u);
    EXPECT_EQ(c.maxTickLag, 0);
}

TEST(LogCorrelator, SmallLagAllowedLargeLagFlagged)
{
    ActivityLog a, b;
    a.records = {pen(10, 5, 6, true), key(30, 8)};
    b.records = {pen(25, 5, 6, true), key(80, 8)};
    auto c = correlateLogs(a, b);
    EXPECT_EQ(c.payloadMismatches, 0u);
    EXPECT_EQ(c.maxTickLag, 50);
    EXPECT_EQ(c.lagOver20Ticks, 1u); // only the key at +50
    EXPECT_FALSE(c.pass());
}

TEST(LogCorrelator, PayloadMismatchDetected)
{
    ActivityLog a, b;
    a.records = {pen(10, 5, 6, true)};
    b.records = {pen(10, 5, 7, true)}; // wrong y
    auto c = correlateLogs(a, b);
    EXPECT_EQ(c.payloadMismatches, 1u);
    EXPECT_FALSE(c.pass());
}

TEST(LogCorrelator, MissingAndExtraCounted)
{
    ActivityLog a, b;
    a.records = {key(10, 1), key(20, 2), key(30, 4)};
    b.records = {key(10, 1)};
    auto c = correlateLogs(a, b);
    EXPECT_EQ(c.missingEvents, 2u);
    EXPECT_FALSE(c.pass());

    auto c2 = correlateLogs(b, a);
    EXPECT_EQ(c2.extraEvents, 2u);
    EXPECT_TRUE(c2.pass()); // extra trailing events are tolerated
}

TEST(LogCorrelator, ReportMentionsVerdict)
{
    ActivityLog a, b;
    a.records = {key(10, 1)};
    b.records = {key(10, 1)};
    EXPECT_NE(correlateLogs(a, b).report().find("[PASS]"),
              std::string::npos);
}

os::DbView
makeDb(const std::string &name, u32 created, u32 modified,
       std::vector<std::vector<u8>> recs)
{
    os::DbView v;
    v.name = name;
    v.attrs = 0x8;
    v.type = 0x64617461;
    v.creator = 0x74657374;
    v.creationDate = created;
    v.modDate = modified;
    v.backupDate = created;
    for (auto &r : recs) {
        os::DbRecordView rec;
        rec.size = static_cast<u16>(r.size());
        rec.data = std::move(r);
        v.records.push_back(std::move(rec));
    }
    return v;
}

TEST(StateCorrelator, IdenticalStatesPass)
{
    auto a = makeDb("MemoDB", 100, 200, {{1, 2, 3}});
    auto corr = correlateStates({a}, {a});
    EXPECT_TRUE(corr.pass());
    EXPECT_TRUE(corr.diffs.empty());
    EXPECT_EQ(corr.databasesCompared, 1u);
}

TEST(StateCorrelator, DateDifferencesAreBenign)
{
    // The paper's exact observation: creation/backup dates zero on
    // the emulated side because the databases were imported.
    auto handheld = makeDb("MemoDB", 100, 200, {{1, 2, 3}});
    auto emulated = makeDb("MemoDB", 0, 0, {{1, 2, 3}});
    emulated.backupDate = 0;
    auto corr = correlateStates({handheld}, {emulated});
    EXPECT_TRUE(corr.pass()) << corr.report();
    EXPECT_EQ(corr.diffs.size(), 3u);
    for (const auto &d : corr.diffs)
        EXPECT_EQ(d.cls, DiffClass::DateField);
}

TEST(StateCorrelator, RecordDataDifferenceIsSignificant)
{
    auto a = makeDb("MemoDB", 100, 200, {{1, 2, 3}});
    auto b = makeDb("MemoDB", 100, 200, {{1, 2, 9}});
    auto corr = correlateStates({a}, {b});
    EXPECT_FALSE(corr.pass());
    ASSERT_EQ(corr.significantDiffs(), 1u);
    EXPECT_EQ(corr.diffs[0].cls, DiffClass::RecordData);
}

TEST(StateCorrelator, PsysLaunchDbDifferencesAreBenign)
{
    // "The few single byte differences between the records of the two
    // databases are ... attributed to the procedure of loading
    // databases into the simulator" (§3.4).
    auto a = makeDb(os::kLaunchDbName, 100, 200, {{1, 2, 3}});
    auto b = makeDb(os::kLaunchDbName, 100, 200, {{1, 2, 9}});
    auto corr = correlateStates({a}, {b});
    EXPECT_TRUE(corr.pass()) << corr.report();
    ASSERT_EQ(corr.diffs.size(), 1u);
    EXPECT_EQ(corr.diffs[0].cls, DiffClass::PsysLaunchDb);
}

TEST(StateCorrelator, MissingDatabaseIsSignificant)
{
    auto a = makeDb("MemoDB", 1, 1, {});
    auto corr = correlateStates({a}, {});
    EXPECT_FALSE(corr.pass());
    EXPECT_EQ(corr.diffs[0].cls, DiffClass::MissingDb);
    auto corr2 = correlateStates({}, {a});
    EXPECT_FALSE(corr2.pass());
}

TEST(StateCorrelator, StructuralDifferenceIsSignificant)
{
    auto a = makeDb("MemoDB", 1, 1, {{1, 2}});
    auto b = makeDb("MemoDB", 1, 1, {{1, 2}, {3, 4}});
    auto corr = correlateStates({a}, {b});
    EXPECT_FALSE(corr.pass());
    bool sawStructural = false;
    for (const auto &d : corr.diffs)
        if (d.cls == DiffClass::Structural)
            sawStructural = true;
    EXPECT_TRUE(sawStructural);
}

} // namespace
} // namespace pt
