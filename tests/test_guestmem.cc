/**
 * @file
 * GuestHeap and database-inspector tests: allocation/free/coalescing
 * behaviour, first-fit reuse, record-list growth, database parsing,
 * and heap statistics.
 */

#include <gtest/gtest.h>

#include "device/device.h"
#include "os/guestmem.h"

namespace pt
{
namespace
{

using device::Device;
using os::Db;
using os::GuestHeap;
using os::Lay;

struct HeapFixture
{
    HeapFixture()
        : heap(dev.bus())
    {
        heap.format();
    }

    Device dev;
    GuestHeap heap;
};

TEST(GuestHeapTest, FormatCreatesOneFreeChunk)
{
    HeapFixture f;
    EXPECT_TRUE(f.heap.formatted());
    auto s = f.heap.stats();
    EXPECT_EQ(s.chunks, 1u);
    EXPECT_EQ(s.freeChunks, 1u);
    EXPECT_EQ(s.usedChunks, 0u);
    EXPECT_EQ(s.freeBytes,
              Lay::HeapEnd - (Lay::HeapBase + Lay::HHeaderSize));
}

TEST(GuestHeapTest, AllocationsAreSequentialOnFreshHeap)
{
    HeapFixture f;
    Addr a = f.heap.chunkNew(100);
    Addr b = f.heap.chunkNew(100);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_GT(b, a);
    // 100 rounded to even + 8-byte header = 108 apart.
    EXPECT_EQ(b - a, 108u);
}

TEST(GuestHeapTest, FirstFitReusesFreedHole)
{
    HeapFixture f;
    Addr a = f.heap.chunkNew(100);
    f.heap.chunkNew(100); // pin a second chunk after the first
    f.heap.chunkFree(a);
    Addr c = f.heap.chunkNew(60); // fits into the 100-byte hole
    EXPECT_EQ(c, a);
}

TEST(GuestHeapTest, FreeCoalescesWithNextChunk)
{
    HeapFixture f;
    Addr a = f.heap.chunkNew(100);
    Addr b = f.heap.chunkNew(100);
    f.heap.chunkNew(100); // barrier so the free space is bounded
    f.heap.chunkFree(b);  // b merges with nothing (barrier used)
    f.heap.chunkFree(a);  // a coalesces with the free b
    Addr big = f.heap.chunkNew(200); // only fits if coalesced
    EXPECT_EQ(big, a);
}

TEST(GuestHeapTest, OddSizesRoundToEven)
{
    HeapFixture f;
    Addr a = f.heap.chunkNew(7);
    Addr b = f.heap.chunkNew(7);
    EXPECT_EQ(b - a, 16u); // 8 payload + 8 header
}

TEST(GuestHeapTest, ExhaustionReturnsZero)
{
    HeapFixture f;
    // Ask for more than the whole heap.
    EXPECT_EQ(f.heap.chunkNew(Lay::HeapEnd - Lay::HeapBase), 0u);
}

TEST(GuestHeapTest, FindDatabaseByExactName)
{
    HeapFixture f;
    Addr db = f.heap.createDatabase("TestDB", 0x64617461, 0x74657374,
                                    0, 1000);
    ASSERT_NE(db, 0u);
    EXPECT_EQ(f.heap.findDatabase("TestDB"), db);
    EXPECT_EQ(f.heap.findDatabase("TestD"), 0u);  // prefix is not it
    EXPECT_EQ(f.heap.findDatabase("TestDBx"), 0u);
    EXPECT_EQ(f.heap.findDatabase("other"), 0u);
}

TEST(GuestHeapTest, RecordListGrowsPastInitialCapacity)
{
    HeapFixture f;
    Addr db = f.heap.createDatabase("GrowDB", 1, 2, 0, 0);
    for (u32 i = 0; i < Db::InitialCapacity * 3; ++i) {
        Addr rec = f.heap.newRecord(db, 4, i);
        ASSERT_NE(rec, 0u);
        f.dev.bus().poke32(rec, i);
    }
    auto view = os::parseDatabase(f.dev.bus(), db);
    ASSERT_EQ(view.records.size(), Db::InitialCapacity * 3);
    for (u32 i = 0; i < view.records.size(); ++i) {
        const auto &d = view.records[i].data;
        u32 v = (static_cast<u32>(d[0]) << 24) | (d[1] << 16) |
                (d[2] << 8) | d[3];
        EXPECT_EQ(v, i);
    }
    // Modification date reflects the last insert.
    EXPECT_EQ(view.modDate, Db::InitialCapacity * 3 - 1);
}

TEST(GuestHeapTest, CreationOrderIsReverseListOrder)
{
    HeapFixture f;
    f.heap.createDatabase("First", 1, 1, 0, 0);
    f.heap.createDatabase("Second", 1, 2, 0, 0);
    f.heap.createDatabase("Third", 1, 3, 0, 0);
    auto dbs = os::listDatabases(f.dev.bus());
    ASSERT_EQ(dbs.size(), 3u);
    EXPECT_EQ(dbs[0].name, "Third"); // newest first (prepend)
    EXPECT_EQ(dbs[2].name, "First");
}

TEST(GuestHeapTest, SetBackupBitOnAll)
{
    HeapFixture f;
    f.heap.createDatabase("A", 1, 1, 0, 0);
    f.heap.createDatabase("B", 1, 2, Db::AttrExecutable, 0);
    f.heap.setBackupBitOnAll();
    for (const auto &db : os::listDatabases(f.dev.bus()))
        EXPECT_TRUE(db.attrs & Db::AttrBackup) << db.name;
    // Existing attributes survive.
    auto dbs = os::listDatabases(f.dev.bus());
    EXPECT_TRUE(dbs[0].attrs & Db::AttrExecutable);
}

TEST(GuestHeapTest, StatsTrackUsage)
{
    HeapFixture f;
    auto s0 = f.heap.stats();
    Addr db = f.heap.createDatabase("S", 1, 1, 0, 0);
    f.heap.newRecord(db, 50, 0);
    auto s1 = f.heap.stats();
    EXPECT_EQ(s1.usedChunks, s0.usedChunks + 3); // header, list, record
    EXPECT_GT(s1.usedBytes, s0.usedBytes);
    EXPECT_LT(s1.freeBytes, s0.freeBytes);
}

TEST(GuestHeapTest, ParseDatabaseFields)
{
    HeapFixture f;
    Addr db = f.heap.createDatabase("Fields", os::fourcc('t','y','p','e'),
                                    os::fourcc('c','r','t','r'),
                                    Db::AttrBackup, 12345);
    auto v = os::parseDatabase(f.dev.bus(), db);
    EXPECT_EQ(v.name, "Fields");
    EXPECT_EQ(v.type, os::fourcc('t', 'y', 'p', 'e'));
    EXPECT_EQ(v.creator, os::fourcc('c', 'r', 't', 'r'));
    EXPECT_EQ(v.creationDate, 12345u);
    EXPECT_EQ(v.modDate, 12345u);
    EXPECT_EQ(v.backupDate, 0u);
    EXPECT_EQ(v.attrs, Db::AttrBackup);
    EXPECT_TRUE(v.records.empty());
}

} // namespace
} // namespace pt
