/**
 * @file
 * Disassembler tests: assembler/disassembler agreement on encodings
 * emitted by CodeBuilder, plus a fuzz scan proving the decoder never
 * gets stuck or over-reads.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "m68k/codebuilder.h"
#include "m68k/disasm.h"
#include "testutil.h"

namespace pt
{
namespace
{

using m68k::CodeBuilder;
using m68k::Cond;
using m68k::disassemble;
using m68k::Size;
using namespace m68k::ops;

/** Assembles one snippet and returns the first decoded line. */
std::string
decodeFirst(const std::function<void(CodeBuilder &)> &emit)
{
    test::FlatBus bus;
    CodeBuilder b(0x1000);
    emit(b);
    bus.load(0x1000, b.finalize());
    return disassemble(bus, 0x1000).text;
}

TEST(Disasm, DataMovement)
{
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.move(Size::L, dr(1), dr(2));
    }), "move.l d1,d2");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.move(Size::W, imm(0x1234), absl(0x2000));
    }), "move.w #$1234,($2000).l");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.movea(Size::L, postinc(3), 4);
    }), "movea.l (a3)+,a4");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.moveq(-2, 5); }),
              "moveq #-2,d5");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.lea(disp(2, -8), 6);
    }), "lea -8(a2),a6");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.pea(ind(0)); }),
              "pea (a0)");
}

TEST(Disasm, Arithmetic)
{
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.add(Size::W, dr(0), dr(1));
    }), "add.w d0,d1");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.addi(Size::L, 100, dr(2));
    }), "addi.l #$64,d2");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.subq(Size::W, 3, dr(4));
    }), "subq.w #3,d4");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.mulu(dr(3), 5); }),
              "mulu d3,d5");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.divu(dr(2), 6); }),
              "divu d2,d6");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.cmpi(Size::B, 7, dr(0));
    }), "cmpi.b #$7,d0");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.neg(Size::W, dr(1));
    }), "neg.w d1");
}

TEST(Disasm, LogicAndShifts)
{
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.and_(Size::L, dr(1), dr(0));
    }), "and.l d1,d0");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.lsl(Size::W, 4, 3);
    }), "lsl.w #4,d3");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.asr(Size::L, 1, 2);
    }), "asr.l #1,d2");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.swap(6); }),
              "swap d6");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.btst(3, dr(1));
    }), "btst #3,d1");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.clr(Size::B, ind(2));
    }), "clr.b (a2)");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.not_(Size::L, dr(7));
    }), "not.l d7");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.tst(Size::W, dr(0));
    }), "tst.w d0");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.ext(Size::L, 4);
    }), "ext.l d4");
}

TEST(Disasm, ControlFlow)
{
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.rts(); }), "rts");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.rte(); }), "rte");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.nop(); }), "nop");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.trap(15); }),
              "trap #15");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.jsr(ind(0)); }),
              "jsr (a0)");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.jmp(absl(0x4000));
    }), "jmp ($4000).l");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.link(6, -12); }),
              "link a6,#-12");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.unlk(6); }),
              "unlk a6");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) { b.stop(0x2700); }),
              "stop #$2700");
    // Branch targets are resolved to absolute addresses.
    std::string bra = decodeFirst([](CodeBuilder &b) {
        auto l = b.newLabel();
        b.bra(l);
        b.bind(l);
        b.nop();
    });
    EXPECT_EQ(bra, "bra $1004");
    std::string beq = decodeFirst([](CodeBuilder &b) {
        auto l = b.newLabel();
        b.bcc(Cond::EQ, l);
        b.bind(l);
        b.nop();
    });
    EXPECT_EQ(beq, "beq $1004");
    std::string dbra = decodeFirst([](CodeBuilder &b) {
        auto l = b.hereLabel();
        b.dbra(3, l);
    });
    EXPECT_EQ(dbra, "dbf d3,$1000");
}

TEST(Disasm, SystemInstructions)
{
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.moveToSr(imm(0x2000));
    }), "move #$2000,sr");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.moveFromSr(dr(0));
    }), "move sr,d0");
    EXPECT_EQ(decodeFirst([](CodeBuilder &b) {
        b.moveUsp(3, true);
    }), "move a3,usp");
}

TEST(Disasm, FuzzScanNeverSticksOrOverreads)
{
    test::FlatBus bus;
    Rng rng(0xD15A);
    for (Addr a = 0; a < 0x4000; ++a)
        bus.poke8(a, static_cast<u8>(rng.next()));
    Addr pc = 0;
    int decoded = 0;
    while (pc < 0x3F00) {
        auto r = disassemble(bus, pc);
        ASSERT_GE(r.length, 2u);
        ASSERT_LE(r.length, 10u);
        ASSERT_EQ(r.length % 2, 0u);
        ASSERT_FALSE(r.text.empty());
        pc += r.length;
        ++decoded;
    }
    EXPECT_GT(decoded, 1000);
}

TEST(Disasm, WholeRomDecodes)
{
    // Every instruction the ROM builder emits must decode to
    // something other than raw data words (data tables excepted).
    test::FlatBus bus;
    CodeBuilder b(0x1000);
    auto sub = b.newLabel();
    b.move(Size::L, imm(5), dr(0));
    b.bsr(sub);
    b.stop(0x2700);
    b.bind(sub);
    b.addq(Size::L, 1, dr(0));
    b.rts();
    bus.load(0x1000, b.finalize());
    Addr pc = 0x1000;
    std::vector<std::string> lines;
    while (pc < 0x1000 + 18) {
        auto r = disassemble(bus, pc);
        lines.push_back(r.text);
        pc += r.length;
    }
    ASSERT_GE(lines.size(), 5u);
    EXPECT_EQ(lines[0].substr(0, 6), "move.l");
    EXPECT_EQ(lines[1].substr(0, 3), "bsr");
}

} // namespace
} // namespace pt
