/**
 * @file
 * Flight-recorder tests: ring wraparound, the first-trigger-wins dump
 * contract, concurrent writers against a concurrent dumper (the
 * seqlock contract, meaningful under TSan), and the loader's
 * rejection of truncated/corrupt/wrong-schema bundles.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flightrec.h"

namespace pt::obs
{
namespace
{

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
readFileText(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
writeFileText(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

/** The recorder is a process singleton; every test starts from a
 *  clean slate and disarms on the way out. */
class FlightRec : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FlightRecorder::global().reset();
        FlightRecorder::global().setEnabled(false);
    }

    void
    TearDown() override
    {
        FlightRecorder::global().reset();
        FlightRecorder::global().setEnabled(false);
    }
};

TEST_F(FlightRec, DisabledRecorderStoresNothing)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.note("never", 1);
    fr.setEnabled(true);
    const std::string doc = fr.toJson("test");
    EXPECT_EQ(doc.find("never"), std::string::npos);
}

TEST_F(FlightRec, RingKeepsOnlyTheLastCapacityEntries)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.setEnabled(true);
    const u64 total = FlightRecorder::kCapacity * 3 + 17;
    for (u64 i = 0; i < total; ++i)
        fr.notePc(static_cast<u32>(i), i);

    const std::string path = tmpFile("pt_flight_wrap.json");
    ASSERT_TRUE(fr.writeDumpTo(path, "wraparound"));
    FlightDump dump;
    auto r = loadFlightDump(path, dump);
    ASSERT_TRUE(r) << r.message();
    EXPECT_EQ(dump.reason, "wraparound");
    EXPECT_EQ(dump.capacity, FlightRecorder::kCapacity);

    // This thread's ring holds exactly the newest kCapacity PCs, in
    // order: the oldest survivor is total - kCapacity.
    bool found = false;
    for (const FlightThread &th : dump.threads) {
        if (th.entries.empty())
            continue;
        found = true;
        EXPECT_EQ(th.entries.size(), FlightRecorder::kCapacity);
        u64 expect = total - FlightRecorder::kCapacity;
        for (const FlightEntry &e : th.entries) {
            EXPECT_EQ(e.kind, "pc");
            EXPECT_EQ(e.value, expect);
            EXPECT_EQ(e.cycle, expect);
            ++expect;
        }
    }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
}

TEST_F(FlightRec, FirstTriggerWinsAndLaterOnesAreRejected)
{
    FlightRecorder &fr = FlightRecorder::global();
    const std::string path = tmpFile("pt_flight_first.json");
    fr.arm(path);
    ASSERT_TRUE(fr.armed());
    EXPECT_TRUE(fr.enabled()); // arming turns recording on
    fr.note("divergence.epoch", 3);

    ASSERT_TRUE(fr.dumpOnTrigger("epoch_divergence"));
    // The quarantine that follows must not clobber the first dump.
    fr.note("super.quarantine", 3);
    EXPECT_FALSE(fr.dumpOnTrigger("quarantine"));

    FlightDump dump;
    auto r = loadFlightDump(path, dump);
    ASSERT_TRUE(r) << r.message();
    EXPECT_EQ(dump.reason, "epoch_divergence");
    bool sawNote = false;
    for (const FlightThread &th : dump.threads)
        for (const FlightEntry &e : th.entries)
            if (e.kind == "note" && e.name == "divergence.epoch") {
                sawNote = true;
                EXPECT_EQ(e.value, 3u);
            }
    EXPECT_TRUE(sawNote);
    std::remove(path.c_str());
}

TEST_F(FlightRec, UnarmedTriggerIsANoOp)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.setEnabled(true);
    fr.note("orphan", 1);
    EXPECT_FALSE(fr.dumpOnTrigger("watchdog_stall"));
}

/** Writers keep recording while a reader renders dumps: the seqlock
 *  must make this data-race-free (run under TSan in CI) and the
 *  reader must only ever see whole entries. */
TEST_F(FlightRec, ConcurrentWritersAndDumperAreRaceFree)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.setEnabled(true);

    constexpr int kWriters = 4;
    constexpr u64 kPerWriter = 20'000;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&fr, w] {
            for (u64 i = 0; i < kPerWriter; ++i) {
                // Entry invariant the reader checks: value == cycle.
                fr.notePc(static_cast<u32>(i), i);
                if ((i & 1023) == 0)
                    fr.noteSpanBegin("writer.burst");
            }
            (void)w;
        });
    }

    for (int round = 0; round < 20; ++round) {
        const std::string doc = fr.toJson("concurrent");
        EXPECT_NE(doc.find("palmtrace-flightrec-v1"),
                  std::string::npos);
    }
    for (std::thread &t : writers)
        t.join();

    // After the writers quiesce, every surviving pc entry must be
    // whole (no torn value/cycle pairs slipped past the seqlock).
    const std::string path = tmpFile("pt_flight_conc.json");
    ASSERT_TRUE(fr.writeDumpTo(path, "concurrent"));
    FlightDump dump;
    auto r = loadFlightDump(path, dump);
    ASSERT_TRUE(r) << r.message();
    for (const FlightThread &th : dump.threads)
        for (const FlightEntry &e : th.entries)
            if (e.kind == "pc")
                EXPECT_EQ(e.value, e.cycle);
    std::remove(path.c_str());
}

TEST_F(FlightRec, LoaderRejectsMissingTruncatedAndCorruptBundles)
{
    FlightDump dump;
    EXPECT_FALSE(loadFlightDump(tmpFile("pt_flight_nope.json"), dump));

    // A real dump, then break it in every structural way.
    FlightRecorder &fr = FlightRecorder::global();
    fr.setEnabled(true);
    fr.note("crumb", 42);
    const std::string path = tmpFile("pt_flight_corrupt.json");
    ASSERT_TRUE(fr.writeDumpTo(path, "test"));
    const std::string good = readFileText(path);
    ASSERT_FALSE(good.empty());

    {
        FlightDump d;
        ASSERT_TRUE(loadFlightDump(path, d));
    }

    // Truncation at several depths: never a partial result.
    for (std::size_t keep :
         {good.size() / 4, good.size() / 2, good.size() - 2}) {
        writeFileText(path, good.substr(0, keep));
        FlightDump d;
        auto r = loadFlightDump(path, d);
        EXPECT_FALSE(r) << "accepted a dump truncated to " << keep;
        EXPECT_FALSE(r.message().empty());
    }

    // Wrong schema tag.
    {
        std::string bad = good;
        auto at = bad.find("palmtrace-flightrec-v1");
        ASSERT_NE(at, std::string::npos);
        bad.replace(at, 22, "palmtrace-flightrec-v9");
        writeFileText(path, bad);
        FlightDump d;
        EXPECT_FALSE(loadFlightDump(path, d));
    }

    // Not JSON at all.
    writeFileText(path, "PTPK\x01\x02 this is not json");
    {
        FlightDump d;
        auto r = loadFlightDump(path, d);
        EXPECT_FALSE(r);
        EXPECT_FALSE(r.message().empty());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace pt::obs
