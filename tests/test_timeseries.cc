/**
 * @file
 * Simulated-time telemetry tests: the interval sampler's exact-split
 * and merge algebra, the refs-domain variant, the RateWindow behind
 * the heartbeat's windowed rates, scoped-metric merge semantics, and
 * the subsystem's theorem — the epoch-parallel merged series is
 * byte-identical to the sequential series at every job count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "epoch/epochrunner.h"
#include "obs/ratewindow.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

using obs::Timeseries;
using obs::TsRef;

u64
totalCycles(const Timeseries &ts)
{
    u64 n = 0;
    for (const auto &[idx, row] : ts.rows())
        n += row.cycles;
    return n;
}

u64
totalInstructions(const Timeseries &ts)
{
    u64 n = 0;
    for (const auto &[idx, row] : ts.rows())
        n += row.instructions;
    return n;
}

TEST(Timeseries, FirstObserveOnlySetsBaseline)
{
    Timeseries ts(100);
    ts.observe(250, 10);
    EXPECT_TRUE(ts.rows().empty());
    ts.observe(250, 10); // duplicate: still a no-op
    EXPECT_TRUE(ts.rows().empty());
}

TEST(Timeseries, DeltaSplitsExactlyAcrossIntervals)
{
    Timeseries ts(100);
    ts.observe(0, 0);
    ts.observe(250, 10);
    // Cycles split exactly: 100 + 100 + 50.
    ASSERT_EQ(ts.rows().size(), 3u);
    EXPECT_EQ(ts.rows().at(0).cycles, 100u);
    EXPECT_EQ(ts.rows().at(1).cycles, 100u);
    EXPECT_EQ(ts.rows().at(2).cycles, 50u);
    // Instructions sum exactly to the delta whatever the rounding.
    EXPECT_EQ(totalInstructions(ts), 10u);
}

TEST(Timeseries, SharedObservationPointsMakeMergeExact)
{
    // The determinism contract: sequential and epoch-parallel runs
    // observe the SAME (cycle, instruction) points — the epoch
    // boundary is itself an observation point, seen once from each
    // side. A series observing every point must equal the merge of
    // two series that split the point sequence at a shared boundary.
    const u64 pts[][2] = {{0, 0},     {180, 41},  {437, 151},
                          {441, 151}, {700, 230}, {1000, 333}};
    Timeseries whole(64);
    for (const auto &p : pts)
        whole.observe(p[0], p[1]);

    Timeseries a(64), b(64);
    for (int i = 0; i <= 2; ++i)
        a.observe(pts[i][0], pts[i][1]);
    for (int i = 2; i < 6; ++i) // point 2 re-observed: baseline only
        b.observe(pts[i][0], pts[i][1]);
    ASSERT_TRUE(a.merge(b));

    EXPECT_EQ(totalCycles(a), totalCycles(whole));
    EXPECT_EQ(totalInstructions(a), totalInstructions(whole));
    EXPECT_EQ(a.toJsonl(), whole.toJsonl());
}

TEST(Timeseries, OutOfOrderObservationIsANoOp)
{
    Timeseries ts(100);
    ts.observe(0, 0);
    ts.observe(500, 50);
    const std::string before = ts.toJsonl();
    ts.observe(300, 20); // rewind: ignored
    EXPECT_EQ(ts.toJsonl(), before);
}

TEST(Timeseries, RefsAndEventsLandInTheirCycleInterval)
{
    Timeseries ts(100);
    ts.addRef(5, TsRef::Ifetch, false);
    ts.addRef(105, TsRef::Dread, true);
    ts.addRef(105, TsRef::Dwrite, true);
    ts.noteEvent(205);
    EXPECT_EQ(ts.rows().at(0).ifetch, 1u);
    EXPECT_EQ(ts.rows().at(0).ramRefs, 1u);
    EXPECT_EQ(ts.rows().at(1).dread, 1u);
    EXPECT_EQ(ts.rows().at(1).dwrite, 1u);
    EXPECT_EQ(ts.rows().at(1).flashRefs, 2u);
    EXPECT_EQ(ts.rows().at(2).events, 1u);
}

TEST(Timeseries, RefsDomainBucketsByReferenceIndex)
{
    Timeseries ts(2, Timeseries::Domain::Refs);
    ts.addRef(0, TsRef::Ifetch, false);
    ts.addRef(0, TsRef::Dread, true);
    ts.addRef(0, TsRef::Dwrite, false); // third ref: next interval
    ASSERT_EQ(ts.rows().size(), 2u);
    EXPECT_EQ(ts.rows().at(0).ramRefs + ts.rows().at(0).flashRefs, 2u);
    EXPECT_EQ(ts.rows().at(1).ramRefs, 1u);
    EXPECT_NE(ts.toJsonl().find("\"domain\": \"refs\""),
              std::string::npos);
}

TEST(Timeseries, MergeRejectsMismatchedWidthOrDomain)
{
    Timeseries a(100), b(200);
    EXPECT_FALSE(a.merge(b));
    Timeseries c(100, Timeseries::Domain::Refs);
    EXPECT_FALSE(a.merge(c));
}

TEST(Timeseries, AddCacheAtTargetsTheInterval)
{
    Timeseries ts(100);
    ts.addCacheAt(3, 10, 2, 1, 1);
    ts.addCacheAt(3, 5, 0, 0, 0);
    EXPECT_EQ(ts.rows().at(3).l1Hits, 15u);
    EXPECT_EQ(ts.rows().at(3).l1Misses, 2u);
    EXPECT_EQ(ts.rows().at(3).l2Hits, 1u);
    EXPECT_EQ(ts.rows().at(3).l2Misses, 1u);
}

TEST(Timeseries, JsonlHeaderAndCsvShapeAgree)
{
    Timeseries ts(100);
    ts.observe(0, 0);
    ts.observe(100, 7);
    ts.addRef(5, TsRef::Ifetch, true);
    const std::string jsonl = ts.toJsonl();
    EXPECT_NE(jsonl.find("\"schema\": \"palmtrace-timeseries-v1\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"interval\": 100"), std::string::npos);
    EXPECT_NE(jsonl.find("\"start\": 0"), std::string::npos);
    const std::string csv = ts.toCsv();
    EXPECT_EQ(csv.rfind("interval,start,cycles,instructions,ipc,", 0),
              0u);
}

TEST(RateWindow, NeedsTwoSamplesThenTracksTheWindow)
{
    obs::RateWindow w;
    EXPECT_DOUBLE_EQ(w.rate(), 0.0);
    w.add(0.0, 0.0);
    EXPECT_DOUBLE_EQ(w.rate(), 0.0);
    w.add(2.0, 100.0);
    EXPECT_DOUBLE_EQ(w.rate(), 50.0);
    EXPECT_DOUBLE_EQ(w.etaSeconds(200.0), 2.0);
}

TEST(RateWindow, WindowForgetsTheColdStart)
{
    // A long stall followed by fast progress: the whole-run average
    // would stay pessimistic forever; the window must recover. Ring
    // is 16 deep, so 20 fast samples fully evict the stall.
    obs::RateWindow w;
    w.add(0.0, 0.0);
    w.add(100.0, 1.0); // 100 s for 1 unit: terrible
    double t = 100.0;
    double p = 1.0;
    for (int i = 0; i < 20; ++i) {
        t += 1.0;
        p += 10.0;
        w.add(t, p);
    }
    EXPECT_NEAR(w.rate(), 10.0, 1e-9);
}

TEST(RateWindow, ZeroElapsedOrRegressIsSafe)
{
    obs::RateWindow w;
    w.add(1.0, 10.0);
    w.add(1.0, 10.0); // no time passed
    EXPECT_DOUBLE_EQ(w.rate(), 0.0);
    w.reset();
    w.add(1.0, 10.0);
    w.add(2.0, 5.0); // position regressed (new epoch's counter)
    EXPECT_DOUBLE_EQ(w.rate(), 0.0);
    EXPECT_DOUBLE_EQ(w.etaSeconds(100.0), 0.0);
}

TEST(MetricScope, PublishMergesCountersHistogramsAndGauges)
{
    obs::Registry parent;
    parent.counter("cache.l1.hits").inc(5);

    obs::MetricScope scope("sweep/8KB-32B-4way");
    scope.registry().counter("cache.l1.hits").inc(7);
    scope.registry().gauge("cache.l1.miss_rate").set(0.25);
    scope.registry().histogram("sweep.config_seconds").add(2.0);

    scope.publish(parent);
    EXPECT_EQ(parent.counterValue("cache.l1.hits"), 12u);
    EXPECT_DOUBLE_EQ(parent.gaugeValue("cache.l1.miss_rate"), 0.25);
    EXPECT_EQ(parent.histogram("sweep.config_seconds").count(), 1u);

    scope.publishLabeled(parent);
    EXPECT_EQ(parent.counterValue(
                  "sweep/8KB-32B-4way.cache.l1.hits"),
              7u);
    // The unprefixed totals are untouched by the labeled view.
    EXPECT_EQ(parent.counterValue("cache.l1.hits"), 12u);
}

TEST(MetricScope, LabelRidesInTheScopedJson)
{
    obs::MetricScope scope("epoch/3");
    scope.registry().counter("epoch.refs").inc(9);
    const std::string doc = scope.toJson();
    EXPECT_NE(doc.find("\"label\": \"epoch/3\""), std::string::npos)
        << doc;
}

TEST(LogHistogram, PercentilesAreOrderedAndClamped)
{
    obs::LogHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 1000.0);
    EXPECT_NEAR(p50, 500.0, 260.0); // log-bucket estimate, coarse
}

/** The differential: a sequential replay's series (cache columns off
 *  on both sides — those are derived from the stitched trace by the
 *  CLI) against the epoch-parallel merged series, byte for byte. */
TEST(TimeseriesDifferential, EpochMergedMatchesSequential)
{
    workload::UserModelConfig ucfg;
    ucfg.seed = 77;
    ucfg.interactions = 4;
    ucfg.meanIdleTicks = 2'000;
    core::Session s = core::PalmSimulator::collect(ucfg);

    constexpr u64 kWidth = 1u << 22;
    Timeseries seq(kWidth);
    core::ReplayConfig cfg;
    cfg.timeseries = &seq;
    core::PalmSimulator::replaySession(s, cfg);
    const std::string seqJsonl = seq.toJsonl();
    ASSERT_FALSE(seq.rows().empty());

    epoch::ScanOptions so;
    so.epochs = 4;
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;

    for (unsigned jobs : {1u, 2u, 8u}) {
        std::string out =
            testing::TempDir() + "/pt_ts_diff.ptpk";
        Timeseries par(kWidth);
        epoch::RunOptions ro;
        ro.jobs = jobs;
        ro.timeseries = &par;
        epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
        ASSERT_TRUE(run.ok) << run.error;
        EXPECT_TRUE(run.divergences.empty());
        EXPECT_EQ(par.toJsonl(), seqJsonl)
            << "merged series differs from sequential at jobs="
            << jobs;
        std::remove(out.c_str());
    }
}

} // namespace
} // namespace pt
