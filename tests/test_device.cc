/**
 * @file
 * Device-model tests: bus routing and reference classification, tick
 * and RTC timekeeping, doze fast-forward, digitizer sampling, button
 * edges, and snapshot round-trips.
 */

#include <gtest/gtest.h>

#include "device/device.h"
#include "device/snapshot.h"
#include "m68k/codebuilder.h"

namespace pt
{
namespace
{

using device::Btn;
using device::Device;
using device::Irq;
using device::kMmioBase;
using device::kRomBase;
using device::Reg;
using device::RefClass;
using device::Snapshot;
using m68k::CodeBuilder;
using m68k::Cond;
using m68k::Size;
using namespace m68k::ops;

constexpr Addr kMmioTick = kMmioBase + Reg::TickCount;
constexpr Addr kMmioRtc = kMmioBase + Reg::RtcSeconds;
constexpr Addr kMmioTimerCmp = kMmioBase + Reg::TimerCmp;
constexpr Addr kMmioIntAck = kMmioBase + Reg::IntAck;
constexpr Addr kMmioPenX = kMmioBase + Reg::PenX;
constexpr Addr kMmioBtn = kMmioBase + Reg::BtnState;

/** Builds a minimal ROM: vectors + code assembled by @p body. */
template <typename F>
void
loadRom(Device &dev, F body)
{
    CodeBuilder b(kRomBase);
    auto entry = b.newLabel();
    b.dcl(0x00008000);  // initial SSP
    b.dclbl(entry);     // initial PC
    b.bind(entry);
    body(b);
    dev.bus().loadRom(b.finalize());
    dev.reset();
}

TEST(DeviceBus, ClassifiesReferences)
{
    Device dev;
    auto &bus = dev.bus();
    bus.resetRefCounts();
    bus.read16(0x1000, m68k::AccessKind::Read);           // RAM
    bus.read16(kRomBase + 0x10, m68k::AccessKind::Fetch); // flash
    bus.read16(kMmioTick, m68k::AccessKind::Read);        // MMIO
    EXPECT_EQ(bus.ramRefs(), 1u);
    EXPECT_EQ(bus.flashRefs(), 1u);
    EXPECT_EQ(bus.mmioRefs(), 1u);
    EXPECT_EQ(bus.totalRefs(), 3u);
}

TEST(DeviceBus, RomWritesIgnored)
{
    Device dev;
    dev.bus().poke8(kRomBase, 0x5A);
    dev.bus().write8(kRomBase, 0x77); // guest write: ignored
    EXPECT_EQ(dev.bus().peek8(kRomBase), 0x5A);
}

TEST(DeviceBus, PeeksDoNotCount)
{
    Device dev;
    dev.bus().resetRefCounts();
    dev.bus().peek32(0x100);
    dev.bus().poke32(0x100, 5);
    EXPECT_EQ(dev.bus().totalRefs(), 0u);
}

class CountingSink : public device::MemRefSink
{
  public:
    void
    onRef(Addr, m68k::AccessKind, RefClass cls) override
    {
        if (cls == RefClass::Ram)
            ++ram;
        else if (cls == RefClass::Flash)
            ++flash;
    }
    u64 ram = 0;
    u64 flash = 0;
};

TEST(DeviceBus, SinkOnlySeesTracedRefs)
{
    Device dev;
    CountingSink sink;
    dev.bus().setRefSink(&sink);
    dev.bus().read16(0x1000, m68k::AccessKind::Read);
    EXPECT_EQ(sink.ram, 0u); // tracing off
    dev.bus().setTraceEnabled(true);
    dev.bus().read16(0x1000, m68k::AccessKind::Read);
    dev.bus().read16(kRomBase, m68k::AccessKind::Fetch);
    EXPECT_EQ(sink.ram, 1u);
    EXPECT_EQ(sink.flash, 1u);
}

TEST(DeviceRun, GuestReadsTickCounter)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        b.move(Size::L, absl(kMmioTick), dr(0));
        b.move(Size::L, dr(0), absl(0x2000));
        b.stop(0x2700);
    });
    dev.runUntilTick(5);
    // Ticks at the time of the read were < 1 (a few instructions in).
    EXPECT_EQ(dev.bus().peek32(0x2000), 0u);
    EXPECT_GE(dev.ticks(), 5u);
}

TEST(DeviceRun, DozeFastForwardsToTimer)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        auto isr = b.newLabel();
        auto main = b.newLabel();
        b.bra(main);
        b.bind(isr);
        // Acknowledge the timer interrupt and record the tick.
        b.move(Size::W, imm(Irq::Timer), absl(kMmioIntAck));
        b.move(Size::L, imm(device::kTimerDisarmed),
               absl(kMmioTimerCmp));
        b.move(Size::L, absl(kMmioTick), absl(0x2000));
        b.rte();
        b.bind(main);
        // Install level-6 autovector, arm timer at tick 100, doze.
        b.move(Size::L, immlbl(isr), absl((24 + 6) * 4));
        b.move(Size::L, imm(100), absl(kMmioTimerCmp));
        b.stop(0x2000);
        b.move(Size::L, imm(0xAA55), absl(0x2010));
        b.stop(0x2700);
    });
    dev.runUntilTick(500);
    EXPECT_EQ(dev.bus().peek32(0x2000), 100u);       // woke at tick 100
    EXPECT_EQ(dev.bus().peek32(0x2010), 0xAA55u);    // resumed after STOP
    // Doze means almost no instructions executed across 5 seconds.
    EXPECT_LT(dev.instructionsRetired(), 200u);
}

TEST(DeviceRun, PenSamplesAtFiftyHz)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        auto isr = b.newLabel();
        auto main = b.newLabel();
        b.bra(main);
        b.bind(isr);
        b.move(Size::W, imm(Irq::Pen), absl(kMmioIntAck));
        b.addq(Size::L, 1, absl(0x2000)); // count samples
        b.move(Size::W, absl(kMmioPenX), absl(0x2004));
        b.rte();
        b.bind(main);
        b.move(Size::L, immlbl(isr), absl((24 + 5) * 4));
        auto loop = b.hereLabel();
        b.stop(0x2000);
        b.bra(loop);
    });
    dev.runUntilTick(2); // settle into doze
    dev.io().penTouch(80, 120);
    dev.runUntilTick(202); // 2 seconds: expect ~100 samples
    dev.io().penRelease();
    dev.runUntilTick(210);
    u32 samples = dev.bus().peek32(0x2000);
    EXPECT_GE(samples, 99u);
    EXPECT_LE(samples, 102u);
    EXPECT_EQ(dev.bus().peek16(0x2004), 80u);
}

TEST(DeviceRun, ButtonEdgeRaisesInterrupt)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        auto isr = b.newLabel();
        auto main = b.newLabel();
        b.bra(main);
        b.bind(isr);
        b.move(Size::W, imm(Irq::Button), absl(kMmioIntAck));
        b.move(Size::W, absl(kMmioBtn), absl(0x2000));
        b.rte();
        b.bind(main);
        b.move(Size::L, immlbl(isr), absl((24 + 4) * 4));
        auto loop = b.hereLabel();
        b.stop(0x2000);
        b.bra(loop);
    });
    dev.runUntilTick(2);
    dev.io().buttonsSet(Btn::App1);
    dev.runUntilTick(4);
    EXPECT_EQ(dev.bus().peek16(0x2000), Btn::App1);
}

TEST(DeviceRun, RtcAdvancesWithSeconds)
{
    Device dev;
    dev.io().setRtcBase(3'000'000'000u); // seconds since 1904
    loadRom(dev, [](CodeBuilder &b) { b.stop(0x2700); });
    dev.runUntilTick(300); // 3 seconds
    EXPECT_EQ(dev.io().nowRtc(), 3'000'000'003u);
}

TEST(DeviceSnapshot, CaptureRestoreRoundTrip)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        b.move(Size::L, imm(0x12345678), absl(0x4000));
        b.stop(0x2700);
    });
    dev.io().setRtcBase(1000);
    dev.runUntilTick(1);
    Snapshot snap = Snapshot::capture(dev);

    Device dev2;
    snap.restore(dev2);
    EXPECT_EQ(dev2.bus().peek32(0x4000), 0x12345678u);
    EXPECT_EQ(dev2.io().rtcBaseValue(), 1000u);
    EXPECT_EQ(dev2.ticks(), 0u); // soft reset rewound time
    EXPECT_EQ(Snapshot::capture(dev2).fingerprint(),
              snap.fingerprint());
}

TEST(DeviceSnapshot, SerializeRoundTrip)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) {
        b.move(Size::L, imm(0xDEADBEEF), absl(0x5000));
        b.stop(0x2700);
    });
    dev.runUntilTick(1);
    Snapshot snap = Snapshot::capture(dev);
    auto bytes = snap.serialize();
    // Mostly-zero RAM should compress massively below 20 MB.
    EXPECT_LT(bytes.size(), 6u * 1024 * 1024);

    Snapshot back;
    ASSERT_TRUE(Snapshot::deserialize(bytes, back));
    EXPECT_EQ(back.fingerprint(), snap.fingerprint());
}

TEST(DeviceSnapshot, FileRoundTrip)
{
    Device dev;
    loadRom(dev, [](CodeBuilder &b) { b.stop(0x2700); });
    Snapshot snap = Snapshot::capture(dev);
    std::string path = testing::TempDir() + "/pt_snap_test.bin";
    ASSERT_TRUE(snap.save(path));
    Snapshot back;
    ASSERT_TRUE(Snapshot::load(path, back));
    EXPECT_EQ(back.fingerprint(), snap.fingerprint());
    std::remove(path.c_str());
}

TEST(DeviceRun, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        Device dev;
        loadRom(dev, [](CodeBuilder &b) {
            auto isr = b.newLabel();
            auto main = b.newLabel();
            b.bra(main);
            b.bind(isr);
            b.move(Size::W, imm(Irq::Pen), absl(kMmioIntAck));
            b.addq(Size::L, 1, absl(0x2000));
            b.rte();
            b.bind(main);
            b.move(Size::L, immlbl(isr), absl((24 + 5) * 4));
            auto loop = b.hereLabel();
            b.stop(0x2000);
            b.bra(loop);
        });
        dev.runUntilTick(2);
        dev.io().penTouch(10, 20);
        dev.runUntilTick(52);
        dev.io().penRelease();
        dev.runUntilTick(60);
        return Snapshot::capture(dev).fingerprint();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace pt
