/**
 * @file
 * Self-recovering replay tests: option validation, clean-run parity,
 * and fault-injected runs — a transiently dropped or skewed record
 * must recover via checkpoint rewind to the bit-exact clean final
 * state, and a persistent fault must degrade gracefully (skip and
 * continue) instead of looping or corrupting the run.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "fault/faultplan.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using core::PalmSimulator;
using core::ReplayConfig;
using core::ReplayResult;
using core::Session;

workload::UserModelConfig
sessionCfg(u64 seed, double beamWeight = 0.0)
{
    workload::UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 3'000;
    cfg.beamWeight = beamWeight;
    return cfg;
}

/**
 * Reconstructs the engine's sync-event schedule from a log, so tests
 * can aim a fault at the delivery attempt of a specific record kind.
 * Mirrors ReplayEngine's constructor: pen events stage one tick early,
 * key presses add a synthetic release two ticks later, and the list is
 * stable-sorted by tick.
 */
struct SyncSketch
{
    Ticks tick;
    char kind; // 'p'en, 'k'ey press, 'r'elease, 's'erial
};

std::vector<SyncSketch>
sketchSyncEvents(const trace::ActivityLog &log)
{
    std::vector<SyncSketch> ev;
    for (const auto &r : log.records) {
        switch (r.type) {
          case hacks::LogType::PenPoint:
            ev.push_back({r.tick ? r.tick - 1 : 0, 'p'});
            break;
          case hacks::LogType::Key:
            ev.push_back({r.tick, 'k'});
            ev.push_back({static_cast<Ticks>(r.tick + 2), 'r'});
            break;
          case hacks::LogType::Serial:
            ev.push_back({r.tick, 's'});
            break;
          default:
            break;
        }
    }
    std::stable_sort(ev.begin(), ev.end(),
                     [](const SyncSketch &a, const SyncSketch &b) {
                         return a.tick < b.tick;
                     });
    return ev;
}

/** Index of the first sync event of @p kind, or -1. */
s64
firstSyncIndexOf(const trace::ActivityLog &log, char kind)
{
    auto ev = sketchSyncEvents(log);
    for (std::size_t i = 0; i < ev.size(); ++i)
        if (ev[i].kind == kind)
            return static_cast<s64>(i);
    return -1;
}

TEST(RecoveryOptions, InconsistentCombinationsRejected)
{
    device::Device dev;
    trace::ActivityLog empty;
    replay::ReplayEngine engine(dev, empty);

    replay::ReplayCheckpoint cp;
    replay::ReplayOptions bad;

    bad.burstJitterTicks = 10;
    bad.checkpointOut = &cp;
    bad.checkpointAtTick = 100;
    auto s1 = engine.run(bad);
    EXPECT_TRUE(s1.optionsRejected);
    EXPECT_FALSE(s1.optionsError.empty());
    EXPECT_EQ(s1.penEventsInjected, 0u);
    EXPECT_FALSE(cp.valid);

    bad = {};
    bad.burstJitterTicks = 10;
    bad.recover = true;
    auto s2 = engine.run(bad);
    EXPECT_TRUE(s2.optionsRejected);
    EXPECT_NE(s2.optionsError.find("recovery"), std::string::npos);

    bad = {};
    bad.recover = true;
    bad.checkpointOut = &cp;
    bad.checkpointAtTick = 100;
    EXPECT_TRUE(engine.run(bad).optionsRejected);

    bad = {};
    bad.recover = true;
    bad.recoveryCheckTicks = 0;
    EXPECT_TRUE(engine.run(bad).optionsRejected);

    // The same combinations pass validate() individually.
    replay::ReplayOptions good;
    good.recover = true;
    EXPECT_TRUE(good.validate().empty());
    good = {};
    good.burstJitterTicks = 10;
    EXPECT_TRUE(good.validate().empty());
}

TEST(Recovery, CleanRunWithRecoveryMatchesPlainReplay)
{
    Session s = PalmSimulator::collect(sessionCfg(1234));
    ASSERT_GT(s.log.records.size(), 20u);

    ReplayResult plain = PalmSimulator::replaySession(s);

    ReplayConfig cfg;
    cfg.options.recover = true;
    ReplayResult recovered = PalmSimulator::replaySession(s, cfg);

    EXPECT_FALSE(recovered.replayStats.optionsRejected);
    EXPECT_EQ(recovered.finalState.fingerprint(),
              plain.finalState.fingerprint());
    EXPECT_EQ(recovered.replayStats.divergencesDetected, 0u);
    EXPECT_EQ(recovered.replayStats.recoveryRewinds, 0u);
    EXPECT_EQ(recovered.replayStats.recordsSkipped, 0u);
    EXPECT_EQ(recovered.replayStats.faultsInjected, 0u);
}

TEST(Recovery, TransientDroppedRecordRecoversBitExactly)
{
    Session s = PalmSimulator::collect(sessionCfg(1234));
    ASSERT_GT(s.log.countOf(hacks::LogType::Key), 0u);
    s64 keyIdx = firstSyncIndexOf(s.log, 'k');
    ASSERT_GE(keyIdx, 0);

    ReplayResult clean = PalmSimulator::replaySession(s);

    // On the first pass, delivery attempt N is sync event N, so the
    // transient fault lands on the key press; the recovery rewind
    // replays it cleanly (the fault is consumed).
    fault::ScriptedReplayFaults faults;
    faults.dropOnceAtAttempt(static_cast<u64>(keyIdx));

    ReplayConfig cfg;
    cfg.options.recover = true;
    cfg.options.faultHook = &faults;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);

    EXPECT_EQ(faults.fired(), 1u);
    EXPECT_GE(r.replayStats.faultsInjected, 1u);
    EXPECT_GE(r.replayStats.divergencesDetected, 1u);
    EXPECT_GE(r.replayStats.recoveryRewinds, 1u);
    EXPECT_EQ(r.replayStats.recordsSkipped, 0u);
    EXPECT_EQ(r.finalState.fingerprint(),
              clean.finalState.fingerprint());

    // The self-recovered log also passes the paper's correlator.
    auto corr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_TRUE(corr.pass()) << corr.report();
}

TEST(Recovery, TransientTickSkewRecovers)
{
    Session s = PalmSimulator::collect(sessionCfg(1234));
    s64 keyIdx = firstSyncIndexOf(s.log, 'k');
    ASSERT_GE(keyIdx, 0);

    ReplayResult clean = PalmSimulator::replaySession(s);

    // 500 ticks is far beyond the paper's < 20-tick burst model, so
    // the skewed delivery must be flagged and rewound.
    fault::ScriptedReplayFaults faults;
    faults.skewOnceAtAttempt(static_cast<u64>(keyIdx), 500);

    ReplayConfig cfg;
    cfg.options.recover = true;
    cfg.options.faultHook = &faults;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);

    EXPECT_EQ(faults.fired(), 1u);
    EXPECT_GE(r.replayStats.divergencesDetected, 1u);
    EXPECT_GE(r.replayStats.recoveryRewinds, 1u);
    EXPECT_EQ(r.finalState.fingerprint(),
              clean.finalState.fingerprint());
}

TEST(Recovery, PersistentDropDegradesGracefully)
{
    Session s = PalmSimulator::collect(sessionCfg(1234));
    s64 keyIdx = firstSyncIndexOf(s.log, 'k');
    ASSERT_GE(keyIdx, 0);

    // The fault fires on every attempt at this event, so no number of
    // rewinds can fix it: the engine must give the record up and
    // finish the replay rather than loop.
    fault::ScriptedReplayFaults faults;
    faults.dropAlwaysAtIndex(static_cast<u64>(keyIdx));

    ReplayConfig cfg;
    cfg.options.recover = true;
    cfg.options.faultHook = &faults;
    cfg.options.maxRecoveryRetries = 1;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);

    EXPECT_GE(faults.fired(), 1u);
    EXPECT_GE(r.replayStats.divergencesDetected, 1u);
    EXPECT_GE(r.replayStats.recordsSkipped, 1u);
    // Everything else still replays: pen events were unaffected.
    EXPECT_EQ(r.replayStats.penEventsInjected,
              s.log.countOf(hacks::LogType::PenPoint));
}

TEST(Recovery, DuplicateDeliveryDetected)
{
    Session s = PalmSimulator::collect(sessionCfg(16, 0.5));
    if (s.log.countOf(hacks::LogType::Serial) == 0)
        GTEST_SKIP() << "session produced no serial traffic";
    s64 serIdx = firstSyncIndexOf(s.log, 's');
    ASSERT_GE(serIdx, 0);

    // A duplicated serial byte puts an extra record in the replayed
    // log. Whether the engine repairs it by rewind or degrades by
    // widening its extra-record budget, the run must complete with
    // the fault accounted for.
    fault::ScriptedReplayFaults faults;
    faults.duplicateOnceAtAttempt(static_cast<u64>(serIdx));

    ReplayConfig cfg;
    cfg.options.recover = true;
    cfg.options.faultHook = &faults;
    cfg.options.maxRecoveryRetries = 1;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);

    EXPECT_EQ(faults.fired(), 1u);
    EXPECT_GE(r.replayStats.faultsInjected, 1u);
    EXPECT_GE(r.replayStats.divergencesDetected, 1u);
}

TEST(Recovery, FaultHookWithoutRecoveryStillCounts)
{
    Session s = PalmSimulator::collect(sessionCfg(1234));
    s64 keyIdx = firstSyncIndexOf(s.log, 'k');
    ASSERT_GE(keyIdx, 0);

    // Without recover, the fault silently lands (the paper's failure
    // mode) — but the stats still disclose that the run was faulted.
    fault::ScriptedReplayFaults faults;
    faults.dropOnceAtAttempt(static_cast<u64>(keyIdx));

    ReplayConfig cfg;
    cfg.options.faultHook = &faults;
    ReplayResult r = PalmSimulator::replaySession(s, cfg);
    EXPECT_EQ(r.replayStats.faultsInjected, 1u);
    EXPECT_EQ(r.replayStats.recoveryRewinds, 0u);
    EXPECT_EQ(r.replayStats.keyEventsInjected,
              s.log.countOf(hacks::LogType::Key) - 1);
}

} // namespace
} // namespace pt
