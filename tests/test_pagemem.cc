/**
 * @file
 * Page-block memory tests (DESIGN.md §16): singleton page sharing,
 * copy-on-write isolation between sibling images and sibling devices,
 * the page-hash fingerprint against a flat recompute, dirty-aware
 * clearRam, translation-window invalidation when a shared ROM granule
 * is shadowed, and concurrent page sharing across fleet-style workers
 * (a TSan target).
 */

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/fnv.h"
#include "device/device.h"
#include "device/map.h"
#include "device/pagemem.h"
#include "device/snapshot.h"
#include "m68k/busif.h"
#include "os/pilotos.h"

namespace pt
{
namespace
{

using device::kMemPageSize;
using device::PagedImage;

/** Recomputes PagedImage::fingerprint() from flat bytes alone — the
 *  definition the cached page hashes must never drift from. */
u64
flatFingerprint(const std::vector<u8> &flat)
{
    Fnv64 f;
    f.updateValue(static_cast<u64>(flat.size()));
    u8 buf[kMemPageSize];
    for (std::size_t off = 0; off < flat.size(); off += kMemPageSize) {
        const std::size_t take =
            std::min<std::size_t>(kMemPageSize, flat.size() - off);
        std::memset(buf, 0, sizeof(buf)); // tail-padding invariant
        std::memcpy(buf, flat.data() + off, take);
        f.updateValue(fnv64(buf, kMemPageSize));
    }
    return f.value();
}

TEST(PageMem, SingletonPagesAreProcessWide)
{
    EXPECT_EQ(device::zeroPage(), device::zeroPage());
    EXPECT_EQ(device::erasedPage(), device::erasedPage());
    for (std::size_t i = 0; i < kMemPageSize; ++i) {
        ASSERT_EQ(device::zeroPage()->bytes[i], 0x00);
        ASSERT_EQ(device::erasedPage()->bytes[i], 0xFF);
    }
}

TEST(PageMem, FromBytesSharesZeroChunks)
{
    std::vector<u8> flat(3 * kMemPageSize, 0);
    flat[kMemPageSize + 5] = 0xAB; // only the middle page is dirty
    PagedImage img = PagedImage::fromBytes(flat);
    ASSERT_EQ(img.pageCount(), 3u);
    EXPECT_TRUE(img.pageIsZero(0));
    EXPECT_FALSE(img.pageIsZero(1));
    EXPECT_TRUE(img.pageIsZero(2));
    EXPECT_EQ(img.bytes(), flat);
}

TEST(PageMem, AssignSharesOneTemplatePage)
{
    PagedImage img;
    img.assign(4 * kMemPageSize, 0x5A);
    ASSERT_EQ(img.pageCount(), 4u);
    EXPECT_EQ(img.page(0), img.page(1)); // one template, shared
    EXPECT_EQ(img.page(0), img.page(3));
    EXPECT_EQ(img[3 * kMemPageSize + 7], 0x5A);

    img.assign(2 * kMemPageSize, 0);
    EXPECT_TRUE(img.pageIsZero(0));
    EXPECT_TRUE(img.pageIsZero(1));
}

TEST(PageMem, TailBeyondSizeIsZeroPadded)
{
    std::vector<u8> flat(kMemPageSize + 1, 0xAA);
    PagedImage img = PagedImage::fromBytes(flat);
    ASSERT_EQ(img.pageCount(), 2u);
    for (std::size_t i = 1; i < kMemPageSize; ++i)
        ASSERT_EQ(img.page(1)->bytes[i], 0x00);
    // Padding makes equality well defined page by page.
    PagedImage other;
    other.assign(flat.size(), 0);
    for (std::size_t i = 0; i < flat.size(); ++i)
        other[i] = 0xAA;
    EXPECT_EQ(img, other);
}

TEST(PageMem, CopyOnWriteIsolatesSiblingImages)
{
    std::vector<u8> flat(4 * kMemPageSize, 0);
    flat[10] = 0x11;
    PagedImage a = PagedImage::fromBytes(flat);
    PagedImage b = a; // shares every page

    b[kMemPageSize + 3] = 0x42;
    EXPECT_EQ(b[kMemPageSize + 3], 0x42);
    EXPECT_EQ(a[kMemPageSize + 3], 0x00); // no leak into the sibling
    // Only the written page diverged; the rest still share storage.
    EXPECT_EQ(a.page(0), b.page(0));
    EXPECT_NE(a.page(1), b.page(1));
    EXPECT_EQ(a.page(2), b.page(2));
    EXPECT_EQ(a.page(3), b.page(3));
}

TEST(PageMem, IdenticalStoresKeepPagesShared)
{
    PagedImage img;
    img.assign(2 * kMemPageSize, 0);
    img.setByte(5, 0x00); // stores the value already there
    EXPECT_TRUE(img.pageIsZero(0));

    std::vector<u8> zeros(kMemPageSize, 0);
    img.write(kMemPageSize, zeros.data(), zeros.size());
    EXPECT_TRUE(img.pageIsZero(1)); // memcmp-skip kept the share
}

TEST(PageMem, EqualityComparesSharedAndPrivatePages)
{
    std::vector<u8> flat(2 * kMemPageSize, 0);
    flat[100] = 0x77;
    PagedImage a = PagedImage::fromBytes(flat);
    PagedImage b = PagedImage::fromBytes(flat); // private twin pages
    EXPECT_EQ(a, b);
    b[100] = 0x78;
    EXPECT_NE(a, b);
    b[100] = 0x77;
    EXPECT_EQ(a, b);
}

TEST(PageMem, FingerprintMatchesFlatRecompute)
{
    std::vector<u8> flat(5 * kMemPageSize + 123, 0);
    flat[0] = 0x01;
    flat[2 * kMemPageSize + 9] = 0xEE;
    flat[flat.size() - 1] = 0x99;
    PagedImage img = PagedImage::fromBytes(flat);
    EXPECT_EQ(img.fingerprint(), flatFingerprint(flat));
    // A second call hits the cached page hashes — same value.
    EXPECT_EQ(img.fingerprint(), flatFingerprint(flat));

    // Mutating a page resets its cached hash: the fingerprint tracks
    // the new bytes, again matching the flat recompute.
    img[3] = 0xB2;
    flat[3] = 0xB2;
    EXPECT_EQ(img.fingerprint(), flatFingerprint(flat));
}

TEST(CowIsolation, SiblingDevicesDivergeOnlyInWrittenPages)
{
    device::Device a;
    os::setupDevice(a);
    a.runUntilIdle();
    device::Snapshot snap = device::Snapshot::capture(a);

    device::Device b, c;
    snap.restore(b);
    snap.restore(c);
    EXPECT_EQ(b.bus().dirtyPages(), 0u); // restore shares, not copies
    EXPECT_EQ(c.bus().dirtyPages(), 0u);

    const Addr addr = 0x00123456;
    const u8 before = b.bus().peek8(addr);
    b.bus().write8(addr, static_cast<u8>(before ^ 0x5A));

    EXPECT_EQ(b.bus().peek8(addr), static_cast<u8>(before ^ 0x5A));
    EXPECT_EQ(c.bus().peek8(addr), before); // sibling untouched
    EXPECT_EQ(snap.ram[addr], before);      // snapshot untouched
    EXPECT_EQ(b.bus().dirtyPages(), 1u);    // exactly one private page
    EXPECT_EQ(c.bus().dirtyPages(), 0u);
}

TEST(CowIsolation, CaptureFreezesWriteOwnership)
{
    device::Device dev;
    device::Bus &bus = dev.bus();
    bus.write8(0x1000, 0x11);
    PagedImage before = bus.captureRam();
    // The capture dropped write ownership: this store must shadow the
    // page, not mutate the captured image.
    bus.write8(0x1000, 0x22);
    EXPECT_EQ(before[0x1000], 0x11);
    EXPECT_EQ(bus.peek8(0x1000), 0x22);
    EXPECT_EQ(bus.captureRam()[0x1000], 0x22);
}

TEST(CowIsolation, ClearRamIsDirtyAwareAndExact)
{
    device::Device dev;
    device::Bus &bus = dev.bus();
    // Dirty a handful of scattered pages.
    for (Addr a : {Addr(0x100), Addr(0x40000), Addr(0xF00000)})
        bus.write8(a, 0x77);
    EXPECT_EQ(bus.dirtyPages(), 3u);

    bus.clearRam();
    EXPECT_EQ(bus.dirtyPages(), 0u); // every page back to the singleton

    // The cleared image is bit-identical to pristine zero RAM, and its
    // page-hash fingerprint matches a full flat scan of 16 MB zeros.
    PagedImage cleared = bus.captureRam();
    PagedImage pristine;
    pristine.assign(device::kRamSize, 0);
    EXPECT_EQ(cleared, pristine);
    EXPECT_EQ(cleared.fingerprint(),
              flatFingerprint(std::vector<u8>(device::kRamSize, 0)));
}

TEST(CowIsolation, SnapshotFingerprintMatchesFullScan)
{
    device::Device dev;
    os::setupDevice(dev);
    dev.io().buttonsSet(device::Btn::App1);
    dev.runUntilIdle();
    dev.io().buttonsSet(0);
    dev.runUntilIdle();
    device::Snapshot snap = device::Snapshot::capture(dev);

    // The cached page hashes must reproduce exactly the fingerprint a
    // flat scan of the full 16 MB + 4 MB images computes.
    EXPECT_EQ(snap.ram.fingerprint(), flatFingerprint(snap.ram.bytes()));
    EXPECT_EQ(snap.rom.fingerprint(), flatFingerprint(snap.rom.bytes()));
}

TEST(CowIsolation, RomShadowInvalidatesPublishedWindow)
{
    device::Device dev;
    os::setupDevice(dev);
    const Addr pc = device::kRomBase + 0x2000;

    m68k::CodeWindow w;
    ASSERT_TRUE(dev.bus().codeWindow(pc, &w));
    EXPECT_EQ(*w.gen, w.genSnap);
    const u8 orig = dev.bus().peek8(pc);

    // Host-patching a shared flash page shadows it; the published
    // window's generation guard must fire.
    dev.bus().poke8(pc, static_cast<u8>(orig ^ 0xFF));
    EXPECT_NE(*w.gen, w.genSnap);

    // A fresh window sees the private copy; the stale window's pin
    // keeps the retired bytes readable (no dangling pointer).
    m68k::CodeWindow w2;
    ASSERT_TRUE(dev.bus().codeWindow(pc, &w2));
    EXPECT_NE(w2.mem, w.mem);
    EXPECT_EQ(w2.mem[0], static_cast<u8>(orig ^ 0xFF));
    EXPECT_EQ(w.mem[0], orig);
}

TEST(CowIsolation, SharedRomPokeDoesNotLeakToSibling)
{
    device::Device a, b;
    os::setupDevice(a);
    os::setupDevice(b); // both share the process ROM pages
    // Stay inside the built ROM image so the shared PagedImage can be
    // indexed for the leak check below.
    const Addr addr = device::kRomBase + 0x123;
    ASSERT_LT(0x123u, os::builtRomPaged().size());
    const u8 orig = a.bus().peek8(addr);

    a.bus().poke8(addr, static_cast<u8>(orig + 1));
    EXPECT_EQ(a.bus().peek8(addr), static_cast<u8>(orig + 1));
    EXPECT_EQ(b.bus().peek8(addr), orig);
    EXPECT_EQ(os::builtRomPaged()[addr - device::kRomBase], orig);
}

TEST(CowIsolation, OversizedImageLoadClampsInsteadOfAborting)
{
    device::Device dev;
    device::Bus &bus = dev.bus();
    PagedImage big;
    big.assign(device::kRamSize + kMemPageSize, 0x3C);
    bus.loadRam(big); // must clamp with a warning, not die
    EXPECT_EQ(bus.peek8(device::kRamSize - 1), 0x3C);

    PagedImage bigRom;
    bigRom.assign(device::kRomSize + kMemPageSize, 0xD4);
    bus.loadRom(bigRom);
    EXPECT_EQ(bus.peek8(device::kRomBase + device::kRomSize - 1), 0xD4);
}

TEST(CowIsolation, ConcurrentFleetWorkersShareSafely)
{
    // Fleet shape: one shared snapshot, N workers each restoring it
    // into a private device, diverging, and fingerprinting — all
    // touching the same shared pages (and their cachedHash atomics)
    // concurrently. Run under TSan this is the page-store race check.
    device::Device seedDev;
    os::setupDevice(seedDev);
    seedDev.runUntilIdle();
    device::Snapshot snap = device::Snapshot::capture(seedDev);
    const u64 baseFp = snap.fingerprint();

    constexpr int kWorkers = 4;
    std::vector<u64> fps(kWorkers, 0);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (int t = 0; t < kWorkers; ++t) {
        threads.emplace_back([&, t] {
            device::Device dev;
            snap.restore(dev);
            // Hash the shared pages from every worker at once.
            fps[static_cast<std::size_t>(t)] =
                device::Snapshot::capture(dev).fingerprint();
            // Then diverge: private writes must stay private.
            dev.bus().write8(0x2000 + static_cast<Addr>(t), 0xA0);
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kWorkers; ++t)
        EXPECT_EQ(fps[static_cast<std::size_t>(t)], baseFp);
    EXPECT_EQ(snap.fingerprint(), baseFp); // snapshot never mutated
}

} // namespace
} // namespace pt
