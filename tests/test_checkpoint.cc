/**
 * @file
 * Checkpoint tests: bit-exact freeze/thaw of the complete machine
 * state mid-run, serialization round-trips, and checkpointed replay
 * resuming to the same final state as an uninterrupted replay.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "base/artifact.h"
#include "base/binio.h"
#include "core/palmsim.h"
#include "device/checkpoint.h"
#include "fault/faultplan.h"
#include "os/pilotos.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using device::Checkpoint;
using device::Device;

workload::UserModelConfig
sessionCfg(u64 seed)
{
    workload::UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 3'000;
    return cfg;
}

TEST(CheckpointTest, FreezeThawContinuesIdentically)
{
    // Drive two devices identically to a midpoint; freeze one, thaw
    // into a third, then drive the remaining actions on both — the
    // thawed device must end bit-identical.
    auto driveFirstHalf = [](Device &dev) {
        os::setupDevice(dev);
        dev.io().buttonsSet(device::Btn::App2);
        dev.runUntilIdle();
        dev.io().buttonsSet(0);
        dev.runUntilIdle();
        dev.io().penTouch(30, 40);
        dev.runUntilTick(dev.ticks() + 20);
    };
    auto driveSecondHalf = [](Device &dev) {
        dev.io().penMoveTo(90, 100);
        dev.runUntilTick(dev.ticks() + 20);
        dev.io().penRelease();
        dev.runUntilTick(dev.ticks() + 10);
        dev.runUntilIdle();
    };

    Device a;
    driveFirstHalf(a);
    Checkpoint cp = Checkpoint::capture(a);
    driveSecondHalf(a);
    u64 want = Checkpoint::capture(a).fingerprint();

    Device b; // cold device, never booted
    cp.restore(b);
    EXPECT_EQ(Checkpoint::capture(b).fingerprint(), cp.fingerprint());
    driveSecondHalf(b);
    EXPECT_EQ(Checkpoint::capture(b).fingerprint(), want);
}

TEST(CheckpointTest, CapturesMidStrokeDigitizerState)
{
    Device a;
    os::setupDevice(a);
    a.io().penTouch(77, 88);
    a.runUntilTick(a.ticks() + 5); // mid-stroke
    Checkpoint cp = Checkpoint::capture(a);
    EXPECT_TRUE(cp.io.penIsDown);
    EXPECT_EQ(cp.io.penXNow, 77);
    EXPECT_EQ(cp.io.penYNow, 88);

    Device b;
    cp.restore(b);
    EXPECT_TRUE(b.io().penIsTouching());
    EXPECT_EQ(b.ticks(), a.ticks());
}

TEST(CheckpointTest, SerializeRoundTrip)
{
    Device dev;
    os::setupDevice(dev);
    dev.io().serialInject(0x55); // pending FIFO content survives
    dev.runUntilTick(dev.ticks() + 1);
    Checkpoint cp = Checkpoint::capture(dev);
    auto bytes = cp.serialize();
    Checkpoint back;
    ASSERT_TRUE(Checkpoint::deserialize(bytes, back));
    EXPECT_EQ(back.fingerprint(), cp.fingerprint());
    EXPECT_EQ(back.cycleCount, cp.cycleCount);
    EXPECT_EQ(back.cpu.pc, cp.cpu.pc);
}

TEST(CheckpointTest, FileRoundTrip)
{
    Device dev;
    os::setupDevice(dev);
    Checkpoint cp = Checkpoint::capture(dev);
    std::string path = testing::TempDir() + "/pt_ckpt_test.bin";
    ASSERT_TRUE(cp.save(path));
    Checkpoint back;
    ASSERT_TRUE(Checkpoint::load(path, back));
    EXPECT_EQ(back.fingerprint(), cp.fingerprint());
    std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptDataRejected)
{
    Device dev;
    os::setupDevice(dev);
    auto bytes = Checkpoint::capture(dev).serialize();
    Checkpoint back;
    bytes[1] ^= 0xFF;
    EXPECT_FALSE(Checkpoint::deserialize(bytes, back));
    EXPECT_FALSE(Checkpoint::deserialize({}, back));
}

// The corruption contract at real scale. test_integrity already runs
// the exhaustive every-length / every-bit sweep on a small synthetic
// checkpoint; these suites repeat it against a checkpoint captured
// from a booted device — megabytes of RLE-packed RAM — where an
// exhaustive sweep would be quadratic, so the payload is covered with
// a prime stride while every framing byte is still hit exactly.

std::vector<u8>
realCheckpointBytes()
{
    Device dev;
    os::setupDevice(dev);
    dev.io().serialInject(0x5A);
    dev.runUntilTick(dev.ticks() + 50);
    return Checkpoint::capture(dev).serialize();
}

TEST(CheckpointCorruption, RealDeviceTruncationsRejected)
{
    const auto bytes = realCheckpointBytes();
    ASSERT_GT(bytes.size(), 1u << 16);

    std::vector<std::size_t> keeps;
    for (std::size_t keep = 0; keep < 96; ++keep)
        keeps.push_back(keep); // the whole framed header region
    for (std::size_t keep = 96; keep < bytes.size(); keep += 4093)
        keeps.push_back(keep); // payload, prime stride
    for (std::size_t keep = bytes.size() - 32; keep < bytes.size();
         ++keep)
        keeps.push_back(keep); // every tail length

    for (std::size_t keep : keeps) {
        auto cut = fault::FaultPlan::truncatedAt(bytes, keep);
        Checkpoint out;
        LoadResult res = Checkpoint::deserialize(cut, out);
        ASSERT_FALSE(res.ok())
            << "truncation to " << keep << " bytes was accepted";
        ASSERT_FALSE(res.error().reason.empty());
    }
}

TEST(CheckpointCorruption, RealDeviceHeaderBitFlipsRejected)
{
    const auto bytes = realCheckpointBytes();
    ASSERT_GT(bytes.size(), 1u << 16);

    std::vector<std::size_t> offsets;
    for (std::size_t off = 0; off < 96; ++off)
        offsets.push_back(off); // outer frame + embedded headers
    for (std::size_t off = 96; off < bytes.size();
         off += bytes.size() / 16)
        offsets.push_back(off); // sampled payload interior
    for (std::size_t off = bytes.size() - 16; off < bytes.size();
         ++off)
        offsets.push_back(off);

    for (std::size_t off : offsets) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto flipped =
                fault::FaultPlan::bitFlippedAt(bytes, off, bit);
            Checkpoint out;
            LoadResult res = Checkpoint::deserialize(flipped, out);
            ASSERT_FALSE(res.ok()) << "bit " << bit << " of byte "
                                   << off << " flipped undetected";
            ASSERT_FALSE(res.error().field.empty());
        }
    }
}

TEST(CheckpointReplay, ResumeMatchesUninterruptedReplay)
{
    core::Session s = core::PalmSimulator::collect(sessionCfg(1234));
    ASSERT_GT(s.log.records.size(), 20u);

    // Uninterrupted replay.
    core::ReplayResult full = core::PalmSimulator::replaySession(s);

    // Checkpointed replay: freeze near the middle of the log.
    Ticks midTick = s.log.records[s.log.records.size() / 2].tick;

    device::Device dev;
    s.initialState.restore(dev);
    dev.runUntilIdle();
    os::RomSymbols syms = os::buildRom().syms;
    hacks::HackManager mgr(dev, syms);
    mgr.installCollectionHacks();
    dev.runUntilIdle();

    replay::ReplayCheckpoint cp;
    replay::ReplayOptions opts;
    opts.checkpointAtTick = midTick;
    opts.checkpointOut = &cp;
    replay::ReplayEngine engine(dev, s.log);
    engine.run(opts);
    ASSERT_TRUE(cp.valid);
    EXPECT_GT(cp.eventIndex, 0u);

    // The interrupted run itself must match the uninterrupted one.
    EXPECT_EQ(device::Snapshot::capture(dev).fingerprint(),
              full.finalState.fingerprint());

    // Thaw into a completely fresh device and resume.
    device::Device dev2;
    replay::ReplayEngine engine2(dev2, s.log);
    engine2.resume(cp);
    EXPECT_EQ(device::Snapshot::capture(dev2).fingerprint(),
              full.finalState.fingerprint());

    // The resumed half logs the same records as the full replay.
    trace::ActivityLog resumedLog =
        trace::ActivityLog::extract(dev2.bus());
    auto corr = validate::correlateLogs(s.log, resumedLog);
    EXPECT_TRUE(corr.pass()) << corr.report();
}

TEST(CheckpointReplay, ResumeFromDeserializedCheckpoint)
{
    core::Session s = core::PalmSimulator::collect(sessionCfg(77));
    core::ReplayResult full = core::PalmSimulator::replaySession(s);
    Ticks midTick = s.log.records[s.log.records.size() / 2].tick;

    device::Device dev;
    s.initialState.restore(dev);
    dev.runUntilIdle();
    os::RomSymbols syms = os::buildRom().syms;
    hacks::HackManager mgr(dev, syms);
    mgr.installCollectionHacks();
    dev.runUntilIdle();

    replay::ReplayCheckpoint cp;
    replay::ReplayOptions opts;
    opts.checkpointAtTick = midTick;
    opts.checkpointOut = &cp;
    replay::ReplayEngine engine(dev, s.log);
    engine.run(opts);
    ASSERT_TRUE(cp.valid);

    // Round-trip the machine portion through bytes (engine cursors
    // travel alongside in a host-side struct).
    auto bytes = cp.machine.serialize();
    replay::ReplayCheckpoint cp2 = cp;
    ASSERT_TRUE(device::Checkpoint::deserialize(bytes, cp2.machine));

    device::Device dev2;
    replay::ReplayEngine engine2(dev2, s.log);
    engine2.resume(cp2);
    EXPECT_EQ(device::Snapshot::capture(dev2).fingerprint(),
              full.finalState.fingerprint());
}

TEST(CheckpointTest, OversizedEmbeddedRamRejectedStructured)
{
    // Splice a checksum-valid hostile snapshot — one whose RAM image
    // claims more than the device holds — into an otherwise valid
    // checkpoint. Loading must return a structured error pointing at
    // the embedded field, not abort the process (the seed-era bug).
    Checkpoint clean;
    auto framed = clean.serialize();
    artifact::FrameInfo fi;
    ASSERT_TRUE(
        artifact::unframe(framed, artifact::kCheckpointMagic, fi));
    std::vector<u8> payload(
        framed.begin() + static_cast<std::ptrdiff_t>(fi.payloadOffset),
        framed.begin() +
            static_cast<std::ptrdiff_t>(fi.payloadOffset +
                                        fi.payloadLen));
    BinReader r(payload);
    const u32 oldMemSize = r.get32();
    ASSERT_TRUE(r.ok());

    BinWriter hostileSnap;
    hostileSnap.put32(0);                    // rtcBase
    hostileSnap.put32(device::kRamSize + 1); // oversized RAM claim
    auto hostile = artifact::frame(artifact::kSnapshotMagic,
                                   hostileSnap.takeBytes());

    BinWriter w;
    w.put32(static_cast<u32>(hostile.size()));
    w.putBytes(hostile.data(), hostile.size());
    w.putBytes(payload.data() + 4 + oldMemSize,
               payload.size() - 4 - oldMemSize);
    auto bad =
        artifact::frame(artifact::kCheckpointMagic, w.takeBytes());

    Checkpoint out;
    auto res = Checkpoint::deserialize(bad, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "memory.ram");
    EXPECT_NE(res.error().reason.find("capacity"), std::string::npos);
}

} // namespace
} // namespace pt
