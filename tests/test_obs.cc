/**
 * @file
 * Unit tests for the observability layer: the metrics registry
 * (counters, gauges, log-scale histograms, JSON/text rendering), the
 * profile-sink indirection, and the Chrome trace-event tracer.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace pt::obs
{
namespace
{

TEST(Registry, CounterCreatesOnFirstUseAndAccumulates)
{
    Registry reg;
    EXPECT_EQ(reg.counterValue("replay.events"), 0u);
    reg.counter("replay.events").inc();
    reg.counter("replay.events").inc(41);
    EXPECT_EQ(reg.counterValue("replay.events"), 42u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, GaugeSetAndMax)
{
    Registry reg;
    reg.gauge("queue.depth").set(3.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("queue.depth"), 3.0);
    reg.gauge("queue.depth").max(1.0); // lower: no change
    EXPECT_DOUBLE_EQ(reg.gaugeValue("queue.depth"), 3.0);
    reg.gauge("queue.depth").max(9.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("queue.depth"), 9.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("missing"), 0.0);
}

TEST(Registry, HandlesAreStableAcrossLaterInsertions)
{
    Registry reg;
    Counter &c = reg.counter("a.first");
    for (int i = 0; i < 100; ++i)
        reg.counter("fill." + std::to_string(i)).inc();
    c.inc(7); // the handle must still point at the same counter
    EXPECT_EQ(reg.counterValue("a.first"), 7u);
}

TEST(Registry, ClearDropsEverything)
{
    Registry reg;
    reg.counter("a").inc();
    reg.gauge("b").set(1.0);
    reg.histogram("c").add(2.0);
    EXPECT_EQ(reg.size(), 3u);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.counterValue("a"), 0u);
}

TEST(LogHistogram, PowerOfTwoBucketing)
{
    LogHistogram h;
    h.add(0.0);  // < 1 → bucket 0
    h.add(0.5);  // < 1 → bucket 0
    h.add(1.0);  // [1,2) → bucket 1
    h.add(3.0);  // [2,4) → bucket 2
    h.add(4.0);  // [4,8) → bucket 3
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.usedBuckets(), 4u);
}

TEST(LogHistogram, BucketBoundsArePowersOfTwo)
{
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketHigh(0), 1.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(1), 1.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketHigh(1), 2.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(10), 512.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketHigh(10), 1024.0);
}

TEST(LogHistogram, NegativeSamplesLandInBucketZeroButKeepMoments)
{
    LogHistogram h;
    h.add(-8.0);
    h.add(8.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u); // [8,16)
    EXPECT_DOUBLE_EQ(h.summary().min(), -8.0);
    EXPECT_DOUBLE_EQ(h.summary().max(), 8.0);
    EXPECT_DOUBLE_EQ(h.summary().mean(), 0.0);
}

TEST(LogHistogram, EmptyAndReset)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.usedBuckets(), 0u);
    h.add(100.0);
    EXPECT_GT(h.usedBuckets(), 0u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.usedBuckets(), 0u);
}

TEST(Registry, JsonHasSchemaAndAllSections)
{
    Registry reg;
    reg.counter("m68k.instructions").inc(123);
    reg.gauge("bus.flash_fraction").set(0.5);
    reg.histogram("replay.lag").add(7.0);
    std::string j = reg.toJson();
    EXPECT_NE(j.find("\"schema\": \"palmtrace-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(j.find("\"m68k.instructions\": 123"), std::string::npos);
    EXPECT_NE(j.find("\"bus.flash_fraction\""), std::string::npos);
    EXPECT_NE(j.find("\"replay.lag\""), std::string::npos);
    EXPECT_NE(j.find("\"buckets\""), std::string::npos);
}

TEST(Registry, JsonFileRoundTrip)
{
    Registry reg;
    reg.counter("x.count").inc(5);
    std::string path = testing::TempDir() + "pt_obs_roundtrip.json";
    std::string err;
    ASSERT_TRUE(reg.writeJson(path, &err)) << err;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string back;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        back.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(back, reg.toJson());
    EXPECT_NE(back.find("\"x.count\": 5"), std::string::npos);
}

TEST(Registry, TextListsMetrics)
{
    Registry reg;
    reg.counter("a.hits").inc(2);
    reg.gauge("a.rate").set(0.25);
    std::string t = reg.toText();
    EXPECT_NE(t.find("a.hits"), std::string::npos);
    EXPECT_NE(t.find("a.rate"), std::string::npos);
}

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ProfileSink, NullByDefaultAndInstallable)
{
    ASSERT_EQ(profileSink(), nullptr);
    Registry reg;
    RegistrySink sink(reg);
    setProfileSink(&sink);
    ASSERT_EQ(profileSink(), &sink);
    profileSink()->count("p.count", 3);
    profileSink()->gauge("p.gauge", 1.5);
    profileSink()->sample("p.sample", 2.0);
    setProfileSink(nullptr);
    EXPECT_EQ(profileSink(), nullptr);

    EXPECT_EQ(reg.counterValue("p.count"), 3u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("p.gauge"), 1.5);
    EXPECT_EQ(reg.histogram("p.sample").count(), 1u);
}

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer &t = Tracer::global();
    t.clear();
    t.setEnabled(false);
    {
        PT_TRACE_SCOPE("span", "test");
        PT_TRACE_INSTANT("point", "test");
        PT_TRACE_COUNTER("series", 1.0);
    }
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.openSpans(), 0u);
}

TEST(Tracer, RecordsSpansInstantsAndCounters)
{
    Tracer &t = Tracer::global();
    t.clear();
    t.setEnabled(true);
    {
        PT_TRACE_SCOPE("outer", "test");
        PT_TRACE_INSTANT("point", "test");
        PT_TRACE_COUNTER("series", 4.0);
    }
    t.setEnabled(false);
    EXPECT_EQ(t.eventCount(), 3u);
    EXPECT_EQ(t.openSpans(), 0u);

    std::string j = t.toJson();
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"outer\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\": \"C\""), std::string::npos);
    t.clear();
}

// ---------------------------------------------------------------------
// Multi-thread stress: these tests exist to run under TSan (the CI
// sanitizer job) and prove the registry and tracer are data-race-free
// when pool workers publish concurrently.

TEST(RegistryStress, ConcurrentCountersGaugesHistograms)
{
    Registry reg;
    constexpr int kThreads = 8;
    constexpr int kOps = 2'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Half the names are shared across threads, half are
            // per-thread, so lookup creation races are exercised too.
            std::string mine =
                "stress.private." + std::to_string(t);
            for (int i = 0; i < kOps; ++i) {
                reg.counter("stress.shared.count").inc();
                reg.counter(mine).inc();
                reg.gauge("stress.shared.max")
                    .max(static_cast<double>(i));
                reg.histogram("stress.shared.hist")
                    .add(static_cast<double>(i % 97));
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(reg.counterValue("stress.shared.count"),
              static_cast<u64>(kThreads) * kOps);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(reg.counterValue("stress.private." +
                                   std::to_string(t)),
                  static_cast<u64>(kOps));
    }
    EXPECT_DOUBLE_EQ(reg.gaugeValue("stress.shared.max"), kOps - 1);
    EXPECT_EQ(reg.histogram("stress.shared.hist").count(),
              static_cast<u64>(kThreads) * kOps);
}

TEST(RegistryStress, RenderWhileWriting)
{
    Registry reg;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            reg.counter("render.count").inc();
            reg.histogram("render.hist").add(i++ % 31);
        }
    });
    for (int i = 0; i < 50; ++i) {
        std::string j = reg.toJson();
        EXPECT_NE(j.find("\"schema\""), std::string::npos);
        reg.toText();
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
}

TEST(TracerStress, WorkersGetDistinctTracksAndAllEventsLand)
{
    Tracer &t = Tracer::global();
    t.clear();
    t.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kSpans = 500;
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
        threads.emplace_back([&t] {
            for (int i = 0; i < kSpans; ++i) {
                t.begin("work", "stress");
                t.instant("tick", "stress");
                t.end();
            }
        });
    }
    for (auto &th : threads)
        th.join();
    t.setEnabled(false);

    // Two events per iteration per thread; each thread kept its own
    // span stack, so nothing dangles.
    EXPECT_EQ(t.eventCount(),
              static_cast<std::size_t>(kThreads) * kSpans * 2);
    EXPECT_EQ(t.openSpans(), 0u);

    // The JSON names one track per participating thread.
    std::string j = t.toJson();
    EXPECT_NE(j.find("thread_name"), std::string::npos);
    EXPECT_NE(j.find("worker-"), std::string::npos);
    t.clear();
}

TEST(ProfileSinkStress, InstallObserveTeardownAcrossThreads)
{
    Registry reg;
    RegistrySink sink(reg);
    setProfileSink(&sink);
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([] {
            for (int i = 0; i < 1'000; ++i) {
                if (auto *ps = profileSink())
                    ps->count("stress.sink", 1);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    setProfileSink(nullptr);
    EXPECT_EQ(reg.counterValue("stress.sink"), 4'000u);
}

TEST(Tracer, UnclosedSpanIsNotEmitted)
{
    Tracer &t = Tracer::global();
    t.clear();
    t.setEnabled(true);
    t.begin("dangling", "test");
    t.instant("point", "test");
    t.setEnabled(false);
    EXPECT_EQ(t.openSpans(), 1u);
    std::string j = t.toJson();
    EXPECT_EQ(j.find("dangling"), std::string::npos);
    EXPECT_NE(j.find("point"), std::string::npos);
    t.clear();
    EXPECT_EQ(t.openSpans(), 0u);
}

} // namespace
} // namespace pt::obs
