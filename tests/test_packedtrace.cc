/**
 * @file
 * Packed trace (PTPK) tests: round-trips across block shapes and
 * record mixes, corruption/truncation robustness for every frame
 * field (structured LoadErrors, bounded allocation, no crashes),
 * PTTR allocation-bomb regression, hardened Dinero parsing, and the
 * differential proof that a packed-fed sweep is bit-identical to the
 * in-memory sweep at jobs in {1, 8}.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "trace/dinero.h"
#include "trace/memtrace.h"
#include "trace/packedtrace.h"
#include "workload/desktoptrace.h"
#include "workload/tracefeed.h"

namespace pt
{
namespace
{

using trace::PackedTraceReader;
using trace::PackedTraceWriter;
using trace::TraceBuffer;
using trace::TraceRecord;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.addr == b.addr && a.kind == b.kind && a.cls == b.cls;
}

/** Writes @p recs into a packed file at @p path. */
void
writePacked(const std::string &path,
            const std::vector<TraceRecord> &recs,
            u32 blockCapacity = trace::kPackedDefaultBlockCapacity)
{
    PackedTraceWriter w(path, blockCapacity);
    ASSERT_TRUE(w.ok());
    for (const auto &r : recs)
        w.add(r);
    std::string err;
    ASSERT_TRUE(w.close(&err)) << err;
}

/** Streams a packed file fully; returns the final status. */
LoadResult
decodeAll(const std::string &path, std::vector<TraceRecord> &out)
{
    out.clear();
    PackedTraceReader r;
    if (auto res = r.open(path); !res)
        return res;
    std::vector<TraceRecord> block;
    while (r.nextBlock(block))
        out.insert(out.end(), block.begin(), block.end());
    return r.status();
}

void
expectRoundTrip(const std::vector<TraceRecord> &recs,
                u32 blockCapacity, const char *name)
{
    std::string path = tmpPath(name);
    writePacked(path, recs, blockCapacity);
    std::vector<TraceRecord> back;
    LoadResult res = decodeAll(path, back);
    ASSERT_TRUE(res.ok()) << res.message();
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(sameRecord(back[i], recs[i]))
            << "record " << i << " addr 0x" << std::hex
            << recs[i].addr;
    }
    std::remove(path.c_str());
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<u8>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<u8> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** The Fig 7 synthetic desktop trace as records (RAM class). */
std::vector<TraceRecord>
syntheticRecords(u64 refs, u64 seed = 7)
{
    workload::DesktopTraceConfig cfg;
    cfg.refs = refs;
    cfg.seed = seed;
    workload::DesktopTraceGen gen(cfg);
    std::vector<TraceRecord> recs;
    recs.reserve(refs);
    gen.generate([&](Addr a, u8 kind) {
        recs.push_back({a, kind, 0});
    });
    return recs;
}

// ---------------------------------------------------------------------
// Round trips.

TEST(PackedTrace, EmptyRoundTrip)
{
    std::string path = tmpPath("pt_packed_empty.ptpk");
    writePacked(path, {});
    PackedTraceReader r;
    ASSERT_TRUE(r.open(path).ok()) << r.status().message();
    EXPECT_EQ(r.totalRecords(), 0u);
    EXPECT_EQ(r.blockCount(), 0u);
    std::vector<TraceRecord> block;
    EXPECT_FALSE(r.nextBlock(block));
    EXPECT_TRUE(r.status().ok()) << r.status().message();
    std::remove(path.c_str());
}

TEST(PackedTrace, OneBlockRoundTrip)
{
    std::vector<TraceRecord> recs = {
        {0x1000, 0, 0},     {0x1004, 0, 0},     {0x1008, 0, 0},
        {0x7FFF0000, 1, 0}, {0x7FFEFFF0, 2, 0}, {0x10C00010, 0, 1},
        {0x10C00014, 1, 1}, {0x1000, 2, 0},
    };
    expectRoundTrip(recs, 4096, "pt_packed_one.ptpk");
}

TEST(PackedTrace, MultiBlockRoundTrip)
{
    // A tiny block capacity forces many blocks and exercises the
    // per-block chain restarts.
    std::vector<TraceRecord> recs;
    for (u32 i = 0; i < 1000; ++i) {
        recs.push_back({0x00400000 + i * 4, 0, 0});
        if (i % 3 == 0)
            recs.push_back({0x7FFF0000 - (i % 64) * 4, 1, 0});
        if (i % 5 == 0)
            recs.push_back({0x10C00000 + (i % 128) * 2, 2, 1});
    }
    expectRoundTrip(recs, 8, "pt_packed_multi.ptpk");
}

TEST(PackedTrace, AllKindsClassesAndExtremes)
{
    std::vector<TraceRecord> recs;
    for (u8 kind = 0; kind <= 2; ++kind)
        for (u8 cls = 0; cls <= 1; ++cls)
            recs.push_back({0x2000u + kind * 16u + cls, kind, cls});
    // Address extremes, descending runs, exact repeats, region hops.
    recs.push_back({0x00000000, 0, 0});
    recs.push_back({0xFFFFFFFF, 2, 1});
    recs.push_back({0x00000000, 1, 0});
    for (u32 i = 0; i < 40; ++i)
        recs.push_back({0xFFFFFF00u - i * 8, 1, 0});
    for (u32 i = 0; i < 40; ++i)
        recs.push_back({(i % 8) << 28, 0, 0});
    for (u32 i = 0; i < 10; ++i)
        recs.push_back({0x5555AAAA, 2, 0});
    expectRoundTrip(recs, 16, "pt_packed_kinds.ptpk");
}

TEST(PackedTrace, WriterClampsOutOfRangeKinds)
{
    std::string path = tmpPath("pt_packed_clamp.ptpk");
    {
        PackedTraceWriter w(path);
        ASSERT_TRUE(w.ok());
        w.add(0x100, 7, 9); // clamped to kind 2, cls 1
        std::string err;
        ASSERT_TRUE(w.close(&err)) << err;
    }
    std::vector<TraceRecord> back;
    ASSERT_TRUE(decodeAll(path, back).ok());
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].kind, 2);
    EXPECT_EQ(back[0].cls, 1);
    std::remove(path.c_str());
}

TEST(PackedTrace, SeekBlockRandomAccess)
{
    std::vector<TraceRecord> recs = syntheticRecords(1000);
    std::string path = tmpPath("pt_packed_seek.ptpk");
    writePacked(path, recs, 64);

    PackedTraceReader r;
    ASSERT_TRUE(r.open(path).ok());
    ASSERT_GT(r.blockCount(), 3u);
    // Records before block 2 per the index.
    u64 skip = r.blockIndex()[0].count + r.blockIndex()[1].count;
    ASSERT_TRUE(r.seekBlock(2).ok());
    std::vector<TraceRecord> block;
    ASSERT_TRUE(r.nextBlock(block));
    ASSERT_FALSE(block.empty());
    for (std::size_t i = 0; i < block.size(); ++i) {
        ASSERT_TRUE(sameRecord(
            block[i], recs[static_cast<std::size_t>(skip) + i]));
    }
    // Seeking to blockCount positions the stream at the footer.
    ASSERT_TRUE(r.seekBlock(r.blockCount()).ok());
    EXPECT_FALSE(r.nextBlock(block));
    EXPECT_TRUE(r.status().ok()) << r.status().message();
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Size: the packed format must beat raw PTTR by >= 3x on the Fig 7
// synthetic desktop trace (acceptance criterion).

TEST(PackedTrace, CompressesFig7SyntheticTraceThreeFold)
{
    std::vector<TraceRecord> recs = syntheticRecords(200'000);
    std::string packed = tmpPath("pt_packed_fig7.ptpk");
    writePacked(packed, recs);
    u64 packedBytes = readFileBytes(packed).size();
    u64 rawBytes = 8 + 6 * recs.size(); // PTTR header + records
    double ratio = static_cast<double>(rawBytes) /
                   static_cast<double>(packedBytes);
    EXPECT_GE(ratio, 3.0) << packedBytes << " packed bytes vs "
                          << rawBytes << " raw";
    std::remove(packed.c_str());
}

// ---------------------------------------------------------------------
// Corruption and truncation: every damaged input must surface a
// structured LoadError — never a crash, hang, or unbounded
// allocation (run under ASan in CI).

/** A small reference file whose every byte gets attacked below. */
std::vector<u8>
corpusBytes(std::string &path)
{
    path = tmpPath("pt_packed_corpus.ptpk");
    std::vector<TraceRecord> recs = syntheticRecords(200);
    writePacked(path, recs, 32);
    return readFileBytes(path);
}

TEST(PackedTraceCorruption, EveryTruncationFailsCleanly)
{
    std::string path;
    std::vector<u8> good = corpusBytes(path);
    std::vector<TraceRecord> expect;
    ASSERT_TRUE(decodeAll(path, expect).ok());

    std::string cut = tmpPath("pt_packed_cut.ptpk");
    for (std::size_t len = 0; len < good.size(); ++len) {
        writeFileBytes(
            cut, std::vector<u8>(good.begin(),
                                 good.begin() +
                                     static_cast<std::ptrdiff_t>(len)));
        std::vector<TraceRecord> out;
        LoadResult res = decodeAll(cut, out);
        EXPECT_FALSE(res.ok())
            << "truncation to " << len << " bytes decoded "
            << out.size() << " records";
    }
    std::remove(cut.c_str());
    std::remove(path.c_str());
}

TEST(PackedTraceCorruption, EveryByteFlipFailsOrDecodesIdentically)
{
    std::string path;
    std::vector<u8> good = corpusBytes(path);
    std::vector<TraceRecord> expect;
    ASSERT_TRUE(decodeAll(path, expect).ok());

    // Flipping any single byte must either produce a structured
    // error or (if some checksum ever collided) the identical
    // records; silent wrong data is the one unacceptable outcome.
    std::string bad = tmpPath("pt_packed_flip.ptpk");
    for (std::size_t i = 0; i < good.size(); ++i) {
        std::vector<u8> mut = good;
        mut[i] ^= 0x5A;
        writeFileBytes(bad, mut);
        std::vector<TraceRecord> out;
        LoadResult res = decodeAll(bad, out);
        if (res.ok()) {
            ASSERT_EQ(out.size(), expect.size()) << "flip at " << i;
            for (std::size_t j = 0; j < out.size(); ++j) {
                ASSERT_TRUE(sameRecord(out[j], expect[j]))
                    << "flip at byte " << i;
            }
        }
    }
    std::remove(bad.c_str());
    std::remove(path.c_str());
}

TEST(PackedTraceCorruption, HugeBlockCapacityRejectedAtOpen)
{
    std::string path;
    std::vector<u8> good = corpusBytes(path);
    // FileHeader.blockCapacity lives at offset 8.
    good[8] = 0xFF;
    good[9] = 0xFF;
    good[10] = 0xFF;
    good[11] = 0x7F;
    std::string bad = tmpPath("pt_packed_cap.ptpk");
    writeFileBytes(bad, good);
    PackedTraceReader r;
    LoadResult res = r.open(bad);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "blockCapacity");
    std::remove(bad.c_str());
    std::remove(path.c_str());
}

TEST(PackedTraceCorruption, PayloadLengthBombRejected)
{
    std::string path;
    std::vector<u8> good = corpusBytes(path);
    // First block header at offset 16; payloadLen is its u64 at +8.
    // Claim a multi-GB payload: the reader must reject it from the
    // footer bounds before allocating anything.
    for (int b = 0; b < 8; ++b)
        good[16 + 8 + b] = b < 5 ? 0xFF : 0;
    std::string bad = tmpPath("pt_packed_bomb.ptpk");
    writeFileBytes(bad, good);
    std::vector<TraceRecord> out;
    LoadResult res = decodeAll(bad, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "payloadLen");
    std::remove(bad.c_str());
    std::remove(path.c_str());
}

TEST(PackedTraceCorruption, NotATraceFile)
{
    std::string bad = tmpPath("pt_packed_garbage.ptpk");
    writeFileBytes(bad, std::vector<u8>(200, 0x42));
    PackedTraceReader r;
    LoadResult res = r.open(bad);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "magic");
    std::remove(bad.c_str());
}

TEST(PackedTraceCorruption, MissingFile)
{
    PackedTraceReader r;
    EXPECT_FALSE(r.open("/nonexistent/trace.ptpk").ok());
}

// ---------------------------------------------------------------------
// PTTR hardening: the legacy loader must clamp the untrusted record
// count instead of reserving from it (allocation-bomb regression).

TEST(TraceBufferHardening, AllocationBombRejected)
{
    // PTTR header claiming ~2^32 records over a 12-byte payload.
    std::vector<u8> bytes = {
        0x52, 0x54, 0x54, 0x50, // "PTTR" magic, little-endian
        0xF0, 0xFF, 0xFF, 0xFF, // count = 0xFFFFFFF0
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
    };
    std::string bad = tmpPath("pt_pttr_bomb.bin");
    writeFileBytes(bad, bytes);
    TraceBuffer out;
    LoadResult res = TraceBuffer::load(bad, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "count");
    std::remove(bad.c_str());
}

TEST(TraceBufferHardening, TrailingBytesRejected)
{
    TraceBuffer buf;
    buf.onRef(0x1234, m68k::AccessKind::Read, device::RefClass::Ram);
    std::string path = tmpPath("pt_pttr_trailing.bin");
    ASSERT_TRUE(buf.save(path));
    std::vector<u8> bytes = readFileBytes(path);
    bytes.push_back(0xEE);
    writeFileBytes(path, bytes);
    TraceBuffer out;
    LoadResult res = TraceBuffer::load(path, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "payload");
    std::remove(path.c_str());
}

TEST(TraceBufferHardening, ShortAndWrongMagicRejected)
{
    std::string path = tmpPath("pt_pttr_short.bin");
    writeFileBytes(path, {0x52, 0x54});
    TraceBuffer out;
    EXPECT_FALSE(TraceBuffer::load(path, out).ok());

    writeFileBytes(path, {1, 2, 3, 4, 5, 6, 7, 8});
    LoadResult res = TraceBuffer::load(path, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "magic");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Dinero hardening: overlong lines must not shed spurious
// references, malformed lines are counted.

TEST(DineroHardening, OverlongCommentTailIsNotParsed)
{
    // A comment far longer than the 256-byte read buffer whose tail,
    // if re-parsed as a fresh line, would look like a valid
    // reference.
    std::string text = "# ";
    text.append(400, 'x');
    text += "\n2 400100\n";
    // Insert a decoy "1 beef" where the buffer split lands.
    text.insert(250, " 1 beef ");
    std::string path = tmpPath("pt_din_longcomment.din");
    {
        std::ofstream out(path);
        out << text;
    }
    std::vector<std::pair<Addr, u8>> refs;
    trace::DineroStats st;
    s64 n = trace::readDineroFile(
        path, [&](Addr a, u8 l) { refs.push_back({a, l}); }, &st);
    EXPECT_EQ(n, 1);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_EQ(refs[0].first, 0x400100u);
    EXPECT_EQ(st.overlong, 1u);
    EXPECT_EQ(st.malformed, 0u);
    std::remove(path.c_str());
}

TEST(DineroHardening, OverlongRefLineKeepsHeadDropsTail)
{
    // The reference itself fits in the head fragment; the overlong
    // trailing junk must not become extra references.
    std::string line = "2 400104 ";
    line.append(300, 'z');
    std::string path = tmpPath("pt_din_longref.din");
    {
        std::ofstream out(path);
        out << line << "\n0 10ab4\n";
    }
    std::vector<Addr> addrs;
    trace::DineroStats st;
    s64 n = trace::readDineroFile(
        path, [&](Addr a, u8) { addrs.push_back(a); }, &st);
    EXPECT_EQ(n, 2);
    EXPECT_EQ(addrs, (std::vector<Addr>{0x400104, 0x10AB4}));
    EXPECT_EQ(st.overlong, 1u);
    std::remove(path.c_str());
}

TEST(DineroHardening, MalformedLinesCountedNotEmitted)
{
    const char *text = "bogus\n"
                       "7 1234\n"     // label out of range
                       "2\n"          // missing address
                       "2 zz\n"       // bad hex
                       "1 100000000\n" // address overflows 32 bits
                       "212 400100\n" // label glued to address? no:
                                      // 212 > 2, rejected
                       "2 400100\n";
    trace::DineroStats st;
    std::vector<Addr> addrs;
    s64 n = trace::readDineroText(
        text, [&](Addr a, u8) { addrs.push_back(a); }, &st);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(addrs, (std::vector<Addr>{0x400100}));
    EXPECT_EQ(st.malformed, 6u);
    EXPECT_EQ(st.overlong, 0u);
}

// ---------------------------------------------------------------------
// Determinism: feeding the sweep from a packed file must be
// bit-identical to feeding the same records from memory, at any job
// count (§9 determinism contract extended to streamed traces).

bool
sameStats(const cache::CacheStats &a, const cache::CacheStats &b)
{
    return a.accesses == b.accesses && a.misses == b.misses &&
           a.evictions == b.evictions &&
           a.ramAccesses == b.ramAccesses &&
           a.ramMisses == b.ramMisses &&
           a.flashAccesses == b.flashAccesses &&
           a.flashMisses == b.flashMisses;
}

TEST(PackedSweepDifferential, BitIdenticalToInMemoryAtJobs1And8)
{
    std::vector<TraceRecord> recs = syntheticRecords(60'000);
    // Mark a slice as flash so both backing-store paths are live.
    for (std::size_t i = 0; i < recs.size(); i += 7)
        recs[i].cls = 1;
    std::string path = tmpPath("pt_packed_diff.ptpk");
    writePacked(path, recs, 512);

    auto configs = cache::CacheSweep::paper56();
    for (unsigned jobs : {1u, 8u}) {
        cache::CacheSweep mem(configs, jobs);
        for (const auto &r : recs)
            mem.feed(r.addr, r.cls == 1);
        mem.finish();

        workload::PackedSweepResult packed =
            workload::sweepPackedFile(path, configs, jobs);
        ASSERT_TRUE(packed.status.ok()) << packed.status.message();
        EXPECT_EQ(packed.refs, recs.size());
        ASSERT_EQ(packed.caches.size(), mem.caches().size());
        for (std::size_t i = 0; i < packed.caches.size(); ++i) {
            EXPECT_TRUE(sameStats(packed.caches[i].stats(),
                                  mem.caches()[i].stats()))
                << "config "
                << packed.caches[i].config().name()
                << " at jobs=" << jobs;
        }
    }
    std::remove(path.c_str());
}

TEST(PackedSweepDifferential, MidStreamCorruptionSurfacesAsError)
{
    std::vector<TraceRecord> recs = syntheticRecords(5'000);
    std::string path = tmpPath("pt_packed_midcorrupt.ptpk");
    writePacked(path, recs, 256);
    std::vector<u8> bytes = readFileBytes(path);
    // Damage a payload byte in the middle of the file (inside some
    // block, far from header and footer).
    bytes[bytes.size() / 2] ^= 0xFF;
    writeFileBytes(path, bytes);

    workload::PackedSweepResult res = workload::sweepPackedFile(
        path, cache::CacheSweep::paper56(), 1);
    EXPECT_FALSE(res.status.ok());
    EXPECT_TRUE(res.caches.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace pt
