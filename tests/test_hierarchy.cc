/**
 * @file
 * Tests for the cache extensions: the two-level hierarchy and the
 * energy model.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "workload/desktoptrace.h"

namespace pt
{
namespace
{

using cache::CacheConfig;
using cache::CacheStats;
using cache::EnergyModel;
using cache::Policy;
using cache::TwoLevelCache;

CacheConfig
cfg(u32 size, u32 line, u32 assoc)
{
    return CacheConfig{size, line, assoc, Policy::Lru};
}

TEST(TwoLevel, L2OnlySeesL1Misses)
{
    TwoLevelCache two(cfg(64, 16, 1), cfg(1024, 16, 4));
    // Two addresses conflicting in a 4-set L1 but coexisting in L2.
    for (int i = 0; i < 10; ++i) {
        two.access(0x000, false);
        two.access(0x100, false);
    }
    EXPECT_EQ(two.l1().stats().accesses, 20u);
    EXPECT_EQ(two.l1().stats().misses, 20u); // they evict each other
    EXPECT_EQ(two.l2().stats().accesses, 20u);
    EXPECT_EQ(two.l2().stats().misses, 2u); // only the cold misses
}

TEST(TwoLevel, HitInL1SkipsL2)
{
    TwoLevelCache two(cfg(1024, 16, 2), cfg(4096, 16, 4));
    two.access(0x500, false);
    two.access(0x500, false);
    two.access(0x500, false);
    EXPECT_EQ(two.l1().stats().misses, 1u);
    EXPECT_EQ(two.l2().stats().accesses, 1u);
}

TEST(TwoLevel, AccessTimeFormula)
{
    TwoLevelCache two(cfg(64, 16, 1), cfg(1024, 16, 4));
    for (int i = 0; i < 10; ++i) {
        two.access(0x000, true);
        two.access(0x100, true);
    }
    // MR1 = 1.0, MR2 = 0.1, all flash: T = 1 + 1.0*(4 + 0.1*3) = 5.3
    EXPECT_NEAR(two.avgAccessTime(1.0, 4.0, 1.0, 3.0), 5.3, 1e-9);
}

TEST(TwoLevel, PerfectL1MeansL1Time)
{
    TwoLevelCache two(cfg(1024, 16, 2), cfg(4096, 16, 4));
    two.access(0x500, false);
    for (int i = 0; i < 99; ++i)
        two.access(0x500, false);
    // MR1 = 1/100; T = 1 + 0.01 * (4 + 1.0 * 1.0)
    EXPECT_NEAR(two.avgAccessTime(1.0, 4.0, 1.0, 3.0),
                1.0 + 0.01 * 5.0, 1e-9);
}

TEST(TwoLevel, ResetClearsBothLevels)
{
    TwoLevelCache two(cfg(64, 16, 1), cfg(1024, 16, 4));
    two.access(0x0, false);
    two.reset();
    EXPECT_EQ(two.l1().stats().accesses, 0u);
    EXPECT_EQ(two.l2().stats().accesses, 0u);
}

TEST(Energy, UncachedScalesWithFlashShare)
{
    EnergyModel e;
    // All-flash costs more than all-RAM for the same count.
    EXPECT_GT(e.uncachedEnergyMj(0, 1000), e.uncachedEnergyMj(1000, 0));
    EXPECT_NEAR(e.uncachedEnergyMj(1000, 0), 1000 * 2.5e-6, 1e-12);
}

TEST(Energy, PerfectCacheSavesMost)
{
    EnergyModel e;
    CacheStats s;
    s.accesses = 1000;
    s.misses = 0;
    s.ramAccesses = 300;
    s.flashAccesses = 700;
    double savings = e.savings(s);
    // hit energy 0.5 vs mix 0.3*2.5 + 0.7*6 = 4.95 nJ/access.
    EXPECT_NEAR(savings, 1.0 - 0.5 / 4.95, 1e-9);
}

TEST(Energy, MissyCacheCanLose)
{
    EnergyModel e;
    CacheStats s;
    s.accesses = 1000;
    s.misses = 1000; // pure overhead on top of every memory access
    s.ramAccesses = 1000;
    s.ramMisses = 1000;
    EXPECT_LT(e.savings(s), 0.0);
}

TEST(Energy, RealTraceSavesEnergy)
{
    EnergyModel e;
    cache::Cache c(cfg(4096, 32, 2));
    workload::DesktopTraceConfig tc;
    tc.refs = 200'000;
    workload::DesktopTraceGen gen(tc);
    gen.generate([&](Addr a, u8) { c.access(a, (a >> 28) == 1); });
    EXPECT_GT(e.savings(c.stats()), 0.3);
}

} // namespace
} // namespace pt
