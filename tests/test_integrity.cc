/**
 * @file
 * Artifact integrity tests: the corruption contract. Every prefix
 * truncation and every single-bit flip of a framed artifact must be
 * rejected with a structured LoadError — never a crash, a hang, or a
 * silent success. Seed-era (version 1) unframed files must still load,
 * and `fsck` must pass clean files and fail corrupt ones with useful
 * diagnostics.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "base/artifact.h"
#include "base/binio.h"
#include "device/checkpoint.h"
#include "device/snapshot.h"
#include "fault/faultplan.h"
#include "trace/activitylog.h"
#include "validate/artifactcheck.h"

namespace pt
{
namespace
{

trace::ActivityLog
sampleLog()
{
    trace::ActivityLog log;
    for (u32 i = 0; i < 6; ++i) {
        trace::LogRecord r;
        r.tick = 100 + i * 7;
        r.rtc = 1000 + i;
        r.type = hacks::LogType::PenPoint;
        r.data = 1;
        r.isLong = true;
        r.extra = (static_cast<u32>(10 + i) << 16) | (20 + i);
        log.records.push_back(r);
    }
    trace::LogRecord key;
    key.tick = 200;
    key.rtc = 1010;
    key.type = hacks::LogType::Key;
    key.data = 0x0002;
    log.records.push_back(key);
    return log;
}

device::Snapshot
sampleSnapshot()
{
    device::Snapshot s;
    s.ram.assign(512, 0);
    s.ram[10] = 0xAB;
    s.ram[11] = 0xCD;
    s.ram[300] = 0x7F;
    s.rom.assign(256, 0);
    s.rom[0] = 0x4E;
    s.rom[1] = 0x75;
    s.rtcBase = 0x12345678;
    return s;
}

device::Checkpoint
sampleCheckpoint()
{
    device::Checkpoint c;
    c.memory = sampleSnapshot();
    for (int i = 0; i < 8; ++i) {
        c.cpu.d[i] = 0x1000u + static_cast<u32>(i);
        c.cpu.a[i] = 0x2000u + static_cast<u32>(i);
    }
    c.cpu.pc = 0x10C00400;
    c.cpu.sr = 0x2700;
    c.io.serialFifo = {0x41, 0x42};
    c.io.btnState = 0x0004;
    c.cycleCount = 123456789;
    c.nextPenSample = 333;
    return c;
}

/** Converts a framed (v2) artifact into its seed-era v1 byte layout:
 *  same magic and payload, version 1, no length/checksum fields. */
std::vector<u8>
asLegacyV1(const std::vector<u8> &v2)
{
    EXPECT_GE(v2.size(), 24u);
    std::vector<u8> v1(v2.begin(), v2.begin() + 4);
    v1.push_back(artifact::kLegacyVersion);
    v1.push_back(0);
    v1.push_back(0);
    v1.push_back(0);
    v1.insert(v1.end(), v2.begin() + 24, v2.end());
    return v1;
}

void
writeRaw(const std::string &path, const std::vector<u8> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

template <typename T>
using Deserializer = LoadResult (*)(const std::vector<u8> &, T &);

/** The corruption contract, checked exhaustively for one artifact:
 *  every prefix truncation and every single-bit flip must yield a
 *  structured failure. */
template <typename T>
void
expectAllCorruptionsRejected(const std::vector<u8> &bytes,
                             Deserializer<T> deserialize)
{
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        auto cut = fault::FaultPlan::truncatedAt(bytes, keep);
        T out;
        LoadResult res = deserialize(cut, out);
        ASSERT_FALSE(res.ok())
            << "truncation to " << keep << " bytes was accepted";
        ASSERT_FALSE(res.error().reason.empty());
    }
    for (std::size_t off = 0; off < bytes.size(); ++off) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto flipped =
                fault::FaultPlan::bitFlippedAt(bytes, off, bit);
            T out;
            LoadResult res = deserialize(flipped, out);
            ASSERT_FALSE(res.ok()) << "bit " << bit << " of byte "
                                   << off << " flipped undetected";
            ASSERT_FALSE(res.error().field.empty());
        }
    }
}

TEST(IntegrityFrame, RoundTripAndHeaderFields)
{
    std::vector<u8> payload = {1, 2, 3, 4, 5};
    auto framed = artifact::frame(artifact::kLogMagic, payload);
    ASSERT_EQ(framed.size(), 24u + payload.size());
    artifact::FrameInfo fi;
    ASSERT_TRUE(artifact::unframe(framed, artifact::kLogMagic, fi));
    EXPECT_EQ(fi.version, artifact::kFramedVersion);
    EXPECT_TRUE(fi.checksummed);
    EXPECT_EQ(fi.payloadOffset, 24u);
    EXPECT_EQ(fi.payloadLen, payload.size());

    // The wrong magic is named in the diagnostic.
    artifact::FrameInfo fi2;
    auto res = artifact::unframe(framed, artifact::kSnapshotMagic, fi2);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "magic");
    EXPECT_NE(res.message().find("snapshot"), std::string::npos);
}

TEST(IntegrityLog, SerializeRoundTrip)
{
    trace::ActivityLog log = sampleLog();
    auto bytes = log.serialize();
    trace::ActivityLog back;
    ASSERT_TRUE(trace::ActivityLog::deserialize(bytes, back));
    ASSERT_EQ(back.records.size(), log.records.size());
    for (std::size_t i = 0; i < log.records.size(); ++i) {
        EXPECT_EQ(back.records[i].tick, log.records[i].tick);
        EXPECT_EQ(back.records[i].type, log.records[i].type);
        EXPECT_EQ(back.records[i].extra, log.records[i].extra);
    }
}

TEST(IntegrityLog, AllTruncationsAndBitFlipsRejected)
{
    auto bytes = sampleLog().serialize();
    expectAllCorruptionsRejected<trace::ActivityLog>(
        bytes, &trace::ActivityLog::deserialize);
}

TEST(IntegritySnapshot, AllTruncationsAndBitFlipsRejected)
{
    auto bytes = sampleSnapshot().serialize();
    expectAllCorruptionsRejected<device::Snapshot>(
        bytes, &device::Snapshot::deserialize);
}

TEST(IntegrityCheckpoint, AllTruncationsAndBitFlipsRejected)
{
    auto bytes = sampleCheckpoint().serialize();
    expectAllCorruptionsRejected<device::Checkpoint>(
        bytes, &device::Checkpoint::deserialize);
}

/** A checksum-valid framed snapshot whose RAM image claims
 *  @p ramSize bytes; the capacity check must fire before any RLE
 *  record is read (none follow). */
std::vector<u8>
snapshotClaimingRamSize(u32 ramSize)
{
    BinWriter w;
    w.put32(0x11223344); // rtcBase
    w.put32(ramSize);    // ram image size
    return artifact::frame(artifact::kSnapshotMagic, w.takeBytes());
}

TEST(IntegritySnapshot, OversizedRamImageRejectedStructured)
{
    // The seed-era loader let an oversized image through to
    // Bus::loadRam, which aborted the process. It must now be a
    // structured LoadError naming the field.
    device::Snapshot out;
    auto res = device::Snapshot::deserialize(
        snapshotClaimingRamSize(device::kRamSize + 1), out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "ram");
    EXPECT_NE(res.error().reason.find("capacity"), std::string::npos);
}

TEST(IntegritySnapshot, HostileRamSizeCannotDriveAllocation)
{
    // A ~4 GB claim is refused by the capacity check up front — it
    // must never reach an allocator.
    device::Snapshot out;
    auto res = device::Snapshot::deserialize(
        snapshotClaimingRamSize(0xFFFFFFFFu), out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "ram");
}

TEST(IntegritySnapshot, OversizedRomImageRejectedStructured)
{
    BinWriter w;
    w.put32(0);                    // rtcBase
    w.put32(0);                    // ram: empty image, no records
    w.put32(device::kRomSize + 1); // hostile ROM size
    device::Snapshot out;
    auto res = device::Snapshot::deserialize(
        artifact::frame(artifact::kSnapshotMagic, w.takeBytes()), out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "rom");
    EXPECT_NE(res.error().reason.find("capacity"), std::string::npos);
}

TEST(IntegritySnapshot, FullCapacityImagesStillAccepted)
{
    // Exactly-at-capacity sizes are legitimate (a real device dump).
    BinWriter w;
    w.put32(7);                // rtcBase
    w.put32(device::kRamSize); // ram: one maximal zero run
    w.put32(device::kRamSize);
    w.put32(0);
    w.put32(device::kRomSize); // rom: likewise
    w.put32(device::kRomSize);
    w.put32(0);
    device::Snapshot out;
    auto res = device::Snapshot::deserialize(
        artifact::frame(artifact::kSnapshotMagic, w.takeBytes()), out);
    ASSERT_TRUE(res.ok()) << res.error().reason;
    EXPECT_EQ(out.ram.size(), device::kRamSize);
    EXPECT_EQ(out.rom.size(), device::kRomSize);
}

TEST(IntegrityLog, SeededSmashRejected)
{
    auto bytes = sampleLog().serialize();
    for (u64 seed = 1; seed <= 64; ++seed) {
        fault::FaultPlan plan(seed);
        auto bad = plan.smashed(bytes, 3);
        if (bad == bytes)
            continue; // the smash may rewrite bytes with themselves
        trace::ActivityLog out;
        EXPECT_FALSE(trace::ActivityLog::deserialize(bad, out).ok())
            << "seed " << seed;
    }
}

TEST(IntegrityLog, TrailingGarbageRejected)
{
    auto bytes = sampleLog().serialize();
    bytes.push_back(0x00);
    trace::ActivityLog out;
    auto res = trace::ActivityLog::deserialize(bytes, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "payloadLen");
}

TEST(IntegrityLegacy, V1LogStillLoads)
{
    trace::ActivityLog log = sampleLog();
    auto v1 = asLegacyV1(log.serialize());
    trace::ActivityLog back;
    ASSERT_TRUE(trace::ActivityLog::deserialize(v1, back));
    ASSERT_EQ(back.records.size(), log.records.size());
    EXPECT_EQ(back.records.back().data, log.records.back().data);

    // And through the file path, as a seed-era file on disk would.
    std::string path = testing::TempDir() + "/pt_legacy_log.bin";
    writeRaw(path, v1);
    trace::ActivityLog fromFile;
    ASSERT_TRUE(trace::ActivityLog::load(path, fromFile));
    EXPECT_EQ(fromFile.records.size(), log.records.size());
    std::remove(path.c_str());
}

TEST(IntegrityLegacy, V1SnapshotAndCheckpointStillLoad)
{
    device::Snapshot snap = sampleSnapshot();
    auto v1snap = asLegacyV1(snap.serialize());
    device::Snapshot backSnap;
    ASSERT_TRUE(device::Snapshot::deserialize(v1snap, backSnap));
    EXPECT_EQ(backSnap.fingerprint(), snap.fingerprint());

    device::Checkpoint cp = sampleCheckpoint();
    auto v1cp = asLegacyV1(cp.serialize());
    device::Checkpoint backCp;
    ASSERT_TRUE(device::Checkpoint::deserialize(v1cp, backCp));
    EXPECT_EQ(backCp.fingerprint(), cp.fingerprint());
}

TEST(IntegrityLegacy, TruncatedV1Rejected)
{
    auto v1 = asLegacyV1(sampleLog().serialize());
    // Legacy files carry no checksum, so rejection rests entirely on
    // strict structural parsing: every truncation must still fail.
    for (std::size_t keep = 0; keep < v1.size(); ++keep) {
        auto cut = fault::FaultPlan::truncatedAt(v1, keep);
        trace::ActivityLog out;
        EXPECT_FALSE(trace::ActivityLog::deserialize(cut, out).ok())
            << "legacy truncation to " << keep << " bytes accepted";
    }
}

TEST(IntegrityErrors, OffsetsAndFieldsAreMeaningful)
{
    auto bytes = sampleLog().serialize();
    // Flip one payload byte: the checksum catches it and names the
    // stored/computed values.
    auto bad = fault::FaultPlan::bitFlippedAt(bytes, 30, 0);
    trace::ActivityLog out;
    auto res = trace::ActivityLog::deserialize(bad, out);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().field, "payloadFnv");
    EXPECT_EQ(res.error().offset, 16u);
    EXPECT_NE(res.message().find("checksum mismatch"),
              std::string::npos);
}

TEST(IntegrityAtomicSave, FailureReportsContextAndLeavesNoFile)
{
    trace::ActivityLog log = sampleLog();
    std::string bad =
        testing::TempDir() + "/pt_no_such_dir/deep/log.bin";
    std::string err;
    EXPECT_FALSE(log.save(bad, &err));
    EXPECT_NE(err.find(bad), std::string::npos);
    EXPECT_FALSE(err.empty());
}

TEST(IntegrityAtomicSave, SuccessLeavesNoTempFile)
{
    trace::ActivityLog log = sampleLog();
    std::string path = testing::TempDir() + "/pt_atomic_log.bin";
    ASSERT_TRUE(log.save(path));
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    trace::ActivityLog back;
    EXPECT_TRUE(trace::ActivityLog::load(path, back));
    std::remove(path.c_str());
}

TEST(IntegrityFsck, CleanFilePasses)
{
    std::string path = testing::TempDir() + "/pt_fsck_clean.bin";
    ASSERT_TRUE(sampleLog().save(path));
    validate::FsckReport rep = validate::fsckArtifact(path);
    EXPECT_TRUE(rep.clean()) << rep.summary;
    EXPECT_EQ(rep.kind, "activity log");
    EXPECT_EQ(rep.version, artifact::kFramedVersion);
    EXPECT_TRUE(rep.checksummed);
    EXPECT_NE(rep.summary.find("OK"), std::string::npos);
    std::remove(path.c_str());
}

TEST(IntegrityFsck, CorruptAndMissingFilesFail)
{
    std::string path = testing::TempDir() + "/pt_fsck_bad.bin";
    auto bytes = sampleSnapshot().serialize();
    writeRaw(path, fault::FaultPlan::bitFlippedAt(bytes, 40, 3));
    validate::FsckReport rep = validate::fsckArtifact(path);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.kind, "snapshot");
    EXPECT_NE(rep.summary.find("CORRUPT"), std::string::npos);
    std::remove(path.c_str());

    validate::FsckReport missing = validate::fsckArtifact(
        testing::TempDir() + "/pt_fsck_missing.bin");
    EXPECT_FALSE(missing.clean());

    std::string junk = testing::TempDir() + "/pt_fsck_junk.bin";
    writeRaw(junk, {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4});
    validate::FsckReport unknown = validate::fsckArtifact(junk);
    EXPECT_FALSE(unknown.clean());
    EXPECT_EQ(unknown.kind, "unknown");
    std::remove(junk.c_str());
}

TEST(IntegrityFault, SeededPlansAreDeterministic)
{
    auto bytes = sampleLog().serialize();
    fault::FaultPlan a(42), b(42);
    EXPECT_EQ(a.truncated(bytes), b.truncated(bytes));
    EXPECT_EQ(a.bitFlipped(bytes), b.bitFlipped(bytes));
    EXPECT_EQ(a.smashed(bytes, 5), b.smashed(bytes, 5));
    fault::FaultPlan c(43);
    // A different seed corrupts differently (overwhelmingly likely).
    EXPECT_NE(a.truncated(bytes).size(), 0u);
    (void)c;
}

} // namespace
} // namespace pt
