/**
 * @file
 * Shared test fixtures: a flat big-endian test bus and a harness that
 * assembles code with CodeBuilder, loads it, and runs the CPU.
 */

#ifndef PT_TESTS_TESTUTIL_H
#define PT_TESTS_TESTUTIL_H

#include <vector>

#include "base/types.h"
#include "m68k/busif.h"
#include "m68k/codebuilder.h"
#include "m68k/cpu.h"

namespace pt::test
{

/** A flat RAM covering the low address space; wraps at its size. */
class FlatBus : public m68k::BusIf
{
  public:
    explicit FlatBus(std::size_t size = 1u << 20)
        : mem(size, 0)
    {}

    u8
    read8(Addr a, m68k::AccessKind) override
    {
        return mem[a % mem.size()];
    }

    u16
    read16(Addr a, m68k::AccessKind k) override
    {
        return static_cast<u16>((read8(a, k) << 8) | read8(a + 1, k));
    }

    void
    write8(Addr a, u8 v) override
    {
        mem[a % mem.size()] = v;
        ++gen; // coarse invalidation: any write stales every window
    }

    void
    write16(Addr a, u16 v) override
    {
        write8(a, static_cast<u8>(v >> 8));
        write8(a + 1, static_cast<u8>(v));
    }

    u8 peek8(Addr a) const override { return mem[a % mem.size()]; }

    void
    poke8(Addr a, u8 v) override
    {
        mem[a % mem.size()] = v;
        ++gen;
    }

    /**
     * Code-window support so CPU-level suites exercise the
     * translation cache too. FlatBus reads have no counters and no
     * trace sink, so a window carries only the generation guard —
     * cached fetches then match read16()'s (absent) side effects.
     */
    bool
    codeWindow(Addr a, m68k::CodeWindow *out) override
    {
        constexpr Addr kWin = 1u << 12;
        Addr base = a & ~(kWin - 1);
        if (static_cast<std::size_t>(base) + kWin > mem.size())
            return false; // keep windows clear of address wrapping
        out->mem = &mem[base];
        out->base = base;
        out->len = kWin;
        out->gen = &gen;
        out->genSnap = gen;
        out->fetchCounter = nullptr;
        out->cls = 0;
        out->traced = false;
        return true;
    }

    void
    load(Addr at, const std::vector<u8> &bytes)
    {
        for (std::size_t i = 0; i < bytes.size(); ++i)
            poke8(at + static_cast<Addr>(i), bytes[i]);
    }

  private:
    std::vector<u8> mem;
    u32 gen = 0;
};

/** Assembles, loads and steps short code sequences. */
class CpuHarness
{
  public:
    static constexpr Addr kCodeBase = 0x1000;
    static constexpr Addr kStackTop = 0x8000;

    CpuHarness()
        : cpu(bus)
    {
        // Reset vectors: SSP then PC, both at address 0.
        bus.poke32(0, kStackTop);
        bus.poke32(4, kCodeBase);
    }

    /** Loads assembled code at the code base and resets the CPU. */
    void
    load(m68k::CodeBuilder &b)
    {
        bus.load(kCodeBase, b.finalize());
        cpu.reset();
    }

    /** Steps until the CPU halts/stops or maxSteps is hit. */
    u64
    run(u64 maxSteps = 100000)
    {
        u64 steps = 0;
        while (steps < maxSteps && !cpu.stopped() && !cpu.halted()) {
            cpu.step();
            ++steps;
        }
        return steps;
    }

    FlatBus bus;
    m68k::Cpu cpu;
};

/** @return a builder rooted at the harness code base. */
inline m68k::CodeBuilder
codeAt(Addr base = CpuHarness::kCodeBase)
{
    return m68k::CodeBuilder(base);
}

} // namespace pt::test

#endif // PT_TESTS_TESTUTIL_H
