/**
 * @file
 * Cache simulator tests: geometry, replacement policies, the paper's
 * equations, the 56-configuration sweep, and the fully-associative
 * LRU inclusion property (parameterized).
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "workload/desktoptrace.h"

namespace pt
{
namespace
{

using cache::Cache;
using cache::CacheConfig;
using cache::CacheStats;
using cache::CacheSweep;
using cache::Policy;

CacheConfig
cfg(u32 size, u32 line, u32 assoc, Policy p = Policy::Lru)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = line;
    c.assoc = assoc;
    c.policy = p;
    return c;
}

TEST(CacheConfig, GeometryAndNames)
{
    CacheConfig c = cfg(2048, 32, 4);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.name(), "2KB/32B/4way");
    EXPECT_EQ(cfg(256, 16, 1).name(), "256B/16B/1way");
}

TEST(CacheConfig, InvalidGeometriesRejected)
{
    EXPECT_FALSE(cfg(1000, 32, 1).valid());  // not divisible
    EXPECT_FALSE(cfg(1024, 24, 1).valid());  // line not power of two
    CacheConfig zero;
    zero.sizeBytes = 0;
    EXPECT_FALSE(zero.valid());
}

TEST(CacheConfig, DegenerateGeometryDoesNotDivideByZero)
{
    // A zero line size or associativity used to divide by zero in
    // numSets(); now the geometry reads as zero sets and validate()
    // names the offending field.
    CacheConfig zeroLine = cfg(1024, 0, 2);
    EXPECT_EQ(zeroLine.numSets(), 0u);
    EXPECT_FALSE(zeroLine.valid());
    EXPECT_EQ(zeroLine.validate().error().field, "lineBytes");

    CacheConfig zeroAssoc = cfg(1024, 32, 0);
    EXPECT_EQ(zeroAssoc.numSets(), 0u);
    EXPECT_FALSE(zeroAssoc.valid());
    EXPECT_EQ(zeroAssoc.validate().error().field, "assoc");
}

TEST(CacheConfig, ValidateNamesTheOffendingField)
{
    CacheConfig zeroSize = cfg(0, 32, 1);
    EXPECT_EQ(zeroSize.validate().error().field, "sizeBytes");

    // Line size must be a power of two (the offset mask needs it).
    EXPECT_EQ(cfg(1024, 24, 1).validate().error().field, "lineBytes");

    // Size must divide into whole sets of line*assoc bytes.
    EXPECT_EQ(cfg(1000, 32, 1).validate().error().field, "sizeBytes");

    // Set count must be a power of two (the index mask needs it).
    // 1536 B / (32 B * 1 way) = 48 sets: divisible but not a power
    // of two.
    EXPECT_EQ(cfg(1536, 32, 1).validate().error().field, "sizeBytes");

    // An associativity exceeding the line count makes waySize exceed
    // the cache: 256 B / (32 B * 16 ways) = 0 sets.
    EXPECT_FALSE(cfg(256, 32, 16).valid());

    EXPECT_TRUE(cfg(1024, 32, 2).validate().ok());
    EXPECT_EQ(cfg(1024, 32, 2).validate().message(), "ok");
}

TEST(Cache, ColdMissesThenHits)
{
    Cache c(cfg(1024, 16, 1));
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x10F, false)); // same line
    EXPECT_FALSE(c.access(0x110, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict)
{
    // 256 B direct-mapped, 16 B lines: 16 sets. Addresses 0x0 and
    // 0x100 map to the same set and evict each other.
    Cache c(cfg(256, 16, 1));
    EXPECT_FALSE(c.access(0x000, false));
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_FALSE(c.access(0x000, false)); // evicted
    // Two-way associativity resolves the conflict.
    Cache c2(cfg(256, 16, 2));
    EXPECT_FALSE(c2.access(0x000, false));
    EXPECT_FALSE(c2.access(0x100, false));
    EXPECT_TRUE(c2.access(0x000, false));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // One set of 2 ways (32 B cache, 16 B lines, 2-way).
    Cache c(cfg(32, 16, 2));
    c.access(0x000, false); // miss, way 0
    c.access(0x100, false); // miss, way 1
    c.access(0x000, false); // hit: 0x100 becomes LRU
    c.access(0x200, false); // evicts 0x100
    EXPECT_TRUE(c.access(0x000, false));
    EXPECT_FALSE(c.access(0x100, false));
}

TEST(Cache, FifoIgnoresRecency)
{
    Cache c(cfg(32, 16, 2, Policy::Fifo));
    c.access(0x000, false);
    c.access(0x100, false);
    c.access(0x000, false); // hit, but FIFO order unchanged
    c.access(0x200, false); // evicts 0x000 (oldest insertion)
    EXPECT_FALSE(c.access(0x000, false));
}

TEST(Cache, RandomPolicyIsDeterministicForSeed)
{
    auto run = [](u64 seed) {
        Cache c(cfg(256, 16, 4, Policy::Random), seed);
        Rng r(99);
        for (int i = 0; i < 10000; ++i)
            c.access(static_cast<Addr>(r.below(4096)), false);
        return c.stats().misses;
    };
    EXPECT_EQ(run(1), run(1));
}

TEST(Cache, FlashAndRamAccountedSeparately)
{
    Cache c(cfg(1024, 32, 2));
    c.access(0x100, false);
    c.access(0x100, false);
    c.access(0x10C00000, true);
    EXPECT_EQ(c.stats().ramAccesses, 2u);
    EXPECT_EQ(c.stats().flashAccesses, 1u);
    EXPECT_EQ(c.stats().ramMisses, 1u);
    EXPECT_EQ(c.stats().flashMisses, 1u);
}

TEST(CacheEquations, NoCacheBaselineEq3)
{
    // Paper Table 1: flash at ~2/3 of refs gives ~2.35 cycles.
    double t = CacheStats::noCacheAccessTime(1000, 2000);
    EXPECT_NEAR(t, (1000.0 * 1 + 2000.0 * 3) / 3000.0, 1e-12);
    EXPECT_NEAR(CacheStats::noCacheAccessTime(325, 675), 2.35, 0.001);
}

TEST(CacheEquations, AvgAccessTimeEq2)
{
    CacheStats s;
    s.accesses = 1000;
    s.misses = 100;
    s.ramAccesses = 400;
    s.flashAccesses = 600;
    s.ramMisses = 30;
    s.flashMisses = 70;
    // Paper form: 1 + 0.4*0.1*1 + 0.6*0.1*3 = 1.22
    EXPECT_NEAR(s.avgAccessTimePaper(), 1.22, 1e-12);
    // Exact form: 1 + 30/1000*1 + 70/1000*3 = 1.24
    EXPECT_NEAR(s.avgAccessTimeExact(), 1.24, 1e-12);
    // A perfect cache costs exactly the hit time.
    CacheStats p;
    p.accesses = 10;
    EXPECT_DOUBLE_EQ(p.avgAccessTimePaper(), 1.0);
}

TEST(CacheSweepTest, Paper56Configurations)
{
    auto configs = CacheSweep::paper56();
    ASSERT_EQ(configs.size(), 56u);
    for (const auto &c : configs) {
        EXPECT_TRUE(c.valid()) << c.name();
        EXPECT_EQ(c.policy, Policy::Lru);
    }
    // 7 sizes x 2 lines x 4 associativities, all distinct.
    std::set<std::string> names;
    for (const auto &c : configs)
        names.insert(c.name());
    EXPECT_EQ(names.size(), 56u);
}

TEST(CacheSweepTest, FeedReachesAllCaches)
{
    CacheSweep sweep(CacheSweep::paper56());
    for (int i = 0; i < 1000; ++i)
        sweep.feed(static_cast<Addr>(i * 8), i % 3 == 0);
    sweep.finish();
    for (const auto &c : sweep.caches())
        EXPECT_EQ(c.stats().accesses, 1000u) << c.config().name();
}

/** Fully-associative LRU inclusion: bigger cache never misses more. */
class LruInclusion : public testing::TestWithParam<u32>
{
};

TEST_P(LruInclusion, MissesNonIncreasingWithSize)
{
    u32 line = GetParam();
    // Fully associative: assoc = size / line.
    std::vector<Cache> caches;
    for (u32 size : {256u, 512u, 1024u, 2048u, 4096u})
        caches.emplace_back(cfg(size, line, size / line));

    workload::DesktopTraceConfig tc;
    tc.refs = 200'000;
    tc.seed = 1234 + line;
    workload::DesktopTraceGen gen(tc);
    gen.generate([&](Addr a, u8) {
        for (auto &c : caches)
            c.access(a, false);
    });

    for (std::size_t i = 1; i < caches.size(); ++i) {
        EXPECT_LE(caches[i].stats().misses,
                  caches[i - 1].stats().misses)
            << caches[i].config().name();
    }
}

INSTANTIATE_TEST_SUITE_P(Lines, LruInclusion,
                         testing::Values(16u, 32u, 64u));

/** Cold-start sanity across every paper configuration. */
class PaperConfigs : public testing::TestWithParam<int>
{
};

TEST_P(PaperConfigs, SequentialScanMissRateMatchesLineSize)
{
    auto configs = CacheSweep::paper56();
    const auto &c = configs[static_cast<std::size_t>(GetParam())];
    Cache cache(c);
    // A long sequential word scan misses once per line.
    const u32 n = 100'000;
    for (u32 i = 0; i < n; ++i)
        cache.access(i * 2, false);
    double expected = 2.0 / c.lineBytes;
    EXPECT_NEAR(cache.stats().missRate(), expected, expected * 0.05)
        << c.name();
}

INSTANTIATE_TEST_SUITE_P(All56, PaperConfigs, testing::Range(0, 56));

} // namespace
} // namespace pt
