/**
 * @file
 * Tests for the serial/IrDA extension (the paper's §5.1 future work):
 * UART FIFO semantics, the guest receive path into the BeamInbox
 * database, the sixth collection hack, and collect-replay fidelity
 * for sessions containing beams.
 */

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "hacks/hackmgr.h"
#include "os/guestmem.h"
#include "os/pilotos.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using device::Btn;
using device::Device;
using hacks::LogType;

TEST(SerialFifo, RegisterSemantics)
{
    Device dev;
    auto &io = dev.io();
    EXPECT_EQ(io.readReg(device::Reg::SerData), 0u); // empty
    io.serialInject(0x41);
    io.serialInject(0x42);
    EXPECT_EQ(io.serialPending(), 2u);
    EXPECT_TRUE(io.activeIrqs() & device::Irq::Serial);
    EXPECT_EQ(io.irqLevel(), 3);
    EXPECT_EQ(io.readReg(device::Reg::SerData), 0x141u);
    EXPECT_EQ(io.readReg(device::Reg::SerData), 0x142u);
    // Drained: valid bit clear, interrupt dropped.
    EXPECT_EQ(io.readReg(device::Reg::SerData), 0u);
    EXPECT_FALSE(io.activeIrqs() & device::Irq::Serial);
}

TEST(SerialFifo, HigherPrioritySourcesWin)
{
    Device dev;
    dev.io().serialInject(0x10);
    EXPECT_EQ(dev.io().irqLevel(), 3);
    dev.io().buttonsSet(Btn::App1);
    EXPECT_EQ(dev.io().irqLevel(), 4); // button outranks serial
}

struct SerialFixture
{
    SerialFixture()
    {
        syms = os::setupDevice(dev);
    }

    void
    pressButton(u16 bit)
    {
        dev.io().buttonsSet(bit);
        dev.runUntilIdle();
        dev.io().buttonsSet(0);
        dev.runUntilIdle();
    }

    void
    beamBytes(std::initializer_list<u8> bytes)
    {
        for (u8 b : bytes) {
            dev.io().serialInject(b);
            dev.runUntilTick(dev.ticks() + 1);
            dev.runUntilIdle();
        }
    }

    Device dev;
    os::RomSymbols syms;
};

TEST(SerialGuest, BeamedBytesLandInBeamInbox)
{
    SerialFixture f;
    f.pressButton(Btn::App2); // memo handles serial events
    f.beamBytes({'H', 'i', '!'});
    f.dev.runUntilIdle();

    os::GuestHeap heap(f.dev.bus());
    Addr db = heap.findDatabase("BeamInbox");
    ASSERT_NE(db, 0u);
    auto view = os::parseDatabase(f.dev.bus(), db);
    ASSERT_EQ(view.records.size(), 3u);
    EXPECT_EQ(view.records[0].data[0] << 8 | view.records[0].data[1],
              'H');
    EXPECT_EQ(view.records[2].data[0] << 8 | view.records[2].data[1],
              '!');
    EXPECT_FALSE(f.dev.halted());
}

TEST(SerialGuest, IgnoredOutsideMemo)
{
    // The launcher drops serial events; nothing crashes and no
    // BeamInbox appears.
    SerialFixture f;
    f.beamBytes({1, 2, 3});
    os::GuestHeap heap(f.dev.bus());
    EXPECT_EQ(heap.findDatabase("BeamInbox"), 0u);
    EXPECT_FALSE(f.dev.halted());
}

TEST(SerialHack, ReceptionsAreLogged)
{
    SerialFixture f;
    hacks::HackManager mgr(f.dev, f.syms);
    mgr.installCollectionHacks();
    f.pressButton(Btn::App2);
    f.beamBytes({0xAA, 0xBB});
    trace::ActivityLog log = trace::ActivityLog::extract(f.dev.bus());
    ASSERT_EQ(log.countOf(LogType::Serial), 2u);
    std::vector<u16> bytes;
    for (const auto &r : log.records)
        if (r.type == LogType::Serial)
            bytes.push_back(r.data);
    EXPECT_EQ(bytes, (std::vector<u16>{0xAA, 0xBB}));
}

TEST(SerialReplay, BeamSessionsReplayFaithfully)
{
    workload::UserModelConfig cfg;
    cfg.seed = 777;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 3'000;
    cfg.beamWeight = 0.35; // exercise the extension heavily
    cfg.strokeWeight = 0.25;
    cfg.tapWeight = 0.20;
    cfg.appSwitchWeight = 0.10;
    cfg.scrollHoldWeight = 0.10;

    core::Session s = core::PalmSimulator::collect(cfg);
    if (s.log.countOf(LogType::Serial) == 0)
        GTEST_SKIP() << "session rolled no beams";

    core::ReplayResult r = core::PalmSimulator::replaySession(s);
    EXPECT_EQ(r.replayStats.serialBytesInjected,
              s.log.countOf(LogType::Serial));

    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_TRUE(logCorr.pass()) << logCorr.report();

    device::SnapshotBus a(s.finalState);
    device::SnapshotBus b(r.finalState);
    auto stateCorr = validate::correlateStates(os::listDatabases(a),
                                               os::listDatabases(b));
    EXPECT_TRUE(stateCorr.pass()) << stateCorr.report();
}

TEST(SerialReplay, DeterministicWithBeams)
{
    workload::UserModelConfig cfg;
    cfg.seed = 778;
    cfg.interactions = 4;
    cfg.meanIdleTicks = 2'000;
    cfg.beamWeight = 0.5;
    core::Session s = core::PalmSimulator::collect(cfg);
    core::ReplayResult r1 = core::PalmSimulator::replaySession(s);
    core::ReplayResult r2 = core::PalmSimulator::replaySession(s);
    EXPECT_EQ(r1.finalState.fingerprint(),
              r2.finalState.fingerprint());
}

} // namespace
} // namespace pt
