/**
 * @file
 * Replay property tests: for many session seeds and shapes, the
 * deterministic state machine model must hold — the replayed log
 * correlates with the original and the final states agree up to the
 * paper's benign differences. Also covers replay-engine options
 * (settle, empty logs, seed-queue underrun accounting).
 */

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "validate/correlate.h"

namespace pt
{
namespace
{

using core::PalmSimulator;
using core::ReplayConfig;
using core::ReplayResult;
using core::Session;

/** Session-shape axis for the property sweep. */
struct SweepCase
{
    u64 seed;
    u32 interactions;
    Ticks idle;
    double beamWeight;
};

class ReplayFidelity : public testing::TestWithParam<SweepCase>
{
};

TEST_P(ReplayFidelity, LogAndStateCorrelate)
{
    const auto &p = GetParam();
    workload::UserModelConfig cfg;
    cfg.seed = p.seed;
    cfg.interactions = p.interactions;
    cfg.meanIdleTicks = p.idle;
    cfg.beamWeight = p.beamWeight;

    Session s = PalmSimulator::collect(cfg);
    ASSERT_GT(s.log.records.size(), 5u);

    ReplayResult r = PalmSimulator::replaySession(s);
    auto logCorr = validate::correlateLogs(s.log, r.emulatedLog);
    EXPECT_TRUE(logCorr.pass()) << logCorr.report();

    device::SnapshotBus a(s.finalState);
    device::SnapshotBus b(r.finalState);
    auto stateCorr = validate::correlateStates(os::listDatabases(a),
                                               os::listDatabases(b));
    EXPECT_TRUE(stateCorr.pass()) << stateCorr.report();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ReplayFidelity,
    testing::Values(SweepCase{11, 5, 2'000, 0.0},
                    SweepCase{12, 5, 2'000, 0.0},
                    SweepCase{13, 8, 1'000, 0.0},
                    SweepCase{14, 8, 20'000, 0.0},
                    SweepCase{15, 4, 500, 0.0},
                    SweepCase{16, 6, 5'000, 0.3},
                    SweepCase{17, 10, 3'000, 0.15},
                    SweepCase{18, 3, 100'000, 0.0}),
    [](const testing::TestParamInfo<SweepCase> &info) {
        return "seed" + std::to_string(info.param.seed);
    });

TEST(ReplayOptionsTest, EmptyLogIsANoOp)
{
    Session s;
    {
        PalmSimulator sim;
        sim.beginCollection();
        s = sim.endCollection(); // no user activity at all
    }
    EXPECT_TRUE(s.log.records.empty());
    ReplayResult r = PalmSimulator::replaySession(s);
    EXPECT_EQ(r.replayStats.penEventsInjected, 0u);
    EXPECT_EQ(r.replayStats.keyEventsInjected, 0u);
    // The final states still correlate (both just booted + idled).
    device::SnapshotBus a(s.finalState);
    device::SnapshotBus b(r.finalState);
    auto corr = validate::correlateStates(os::listDatabases(a),
                                          os::listDatabases(b));
    EXPECT_TRUE(corr.pass()) << corr.report();
}

TEST(ReplayOptionsTest, StatsCountInjections)
{
    workload::UserModelConfig cfg;
    cfg.seed = 21;
    cfg.interactions = 6;
    cfg.meanIdleTicks = 2'000;
    Session s = PalmSimulator::collect(cfg);
    ReplayResult r = PalmSimulator::replaySession(s);
    EXPECT_EQ(r.replayStats.penEventsInjected,
              s.log.countOf(hacks::LogType::PenPoint));
    EXPECT_EQ(r.replayStats.keyEventsInjected,
              s.log.countOf(hacks::LogType::Key));
    EXPECT_GE(r.replayStats.keyStateOverrides,
              s.log.countOf(hacks::LogType::KeyState));
    // The last scheduled event may be the synthetic key release two
    // ticks after the last logged record.
    EXPECT_GE(r.replayStats.lastEventTick, s.log.records.back().tick);
    EXPECT_LE(r.replayStats.lastEventTick,
              s.log.records.back().tick + 2);
}

TEST(ReplayOptionsTest, SettleExtendsTheRun)
{
    workload::UserModelConfig cfg;
    cfg.seed = 22;
    cfg.interactions = 3;
    cfg.meanIdleTicks = 1'000;
    Session s = PalmSimulator::collect(cfg);

    ReplayConfig shortSettle;
    shortSettle.options.settleTicks = 10;
    ReplayConfig longSettle;
    longSettle.options.settleTicks = 5'000;
    ReplayResult r1 = PalmSimulator::replaySession(s, shortSettle);
    ReplayResult r2 = PalmSimulator::replaySession(s, longSettle);
    // More settle time means at least as many cycles elapsed.
    EXPECT_GT(r2.cycles, r1.cycles);
    // But the guest is idle either way, so the databases agree.
    device::SnapshotBus a(r1.finalState);
    device::SnapshotBus b(r2.finalState);
    auto corr = validate::correlateStates(os::listDatabases(a),
                                          os::listDatabases(b));
    EXPECT_TRUE(corr.pass()) << corr.report();
}

TEST(ReplayOptionsTest, TruncatedLogsReplaySafely)
{
    // Truncating a log mid-session (a crashed collection, say) must
    // still replay cleanly: the injected counts match the truncated
    // content and no queue accounting goes negative.
    workload::UserModelConfig cfg;
    cfg.seed = 23;
    cfg.interactions = 8;
    cfg.meanIdleTicks = 1'500;
    Session s = PalmSimulator::collect(cfg);
    ASSERT_GT(s.log.records.size(), 10u);

    Session cut = s;
    cut.log.records.resize(s.log.records.size() / 2);

    ReplayResult r = PalmSimulator::replaySession(cut);
    EXPECT_EQ(r.replayStats.penEventsInjected,
              cut.log.countOf(hacks::LogType::PenPoint));
    EXPECT_EQ(r.replayStats.keyEventsInjected,
              cut.log.countOf(hacks::LogType::Key));
    u64 queued = 0;
    for (const auto &rec : cut.log.records)
        if (rec.type == hacks::LogType::Random && rec.extra != 0)
            ++queued;
    EXPECT_LE(r.replayStats.seedsApplied, queued);
}

} // namespace
} // namespace pt
