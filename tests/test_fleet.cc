/**
 * @file
 * Fleet-job tests: per-session packed traces must be byte-identical
 * at any job count, identical to a plain sequential replay of the
 * same spec, and identical across a crash/resume — the determinism
 * contract that makes fleet output trustworthy regardless of how the
 * work was scheduled.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "super/jobs.h"
#include "super/journal.h"
#include "trace/packedtrace.h"
#include "workload/sessionrunner.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

std::vector<workload::SessionSpec>
fleetSpecs()
{
    std::vector<workload::SessionSpec> specs(3);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].name = "dev-" + std::to_string(i);
        specs[i].config.seed = 40 + i;
        specs[i].config.interactions = 3;
        specs[i].config.meanIdleTicks = 1'500;
    }
    return specs;
}

/** Replaces every occurrence of @p from in @p s with @p to. */
std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    std::size_t at = 0;
    while ((at = s.find(from, at)) != std::string::npos) {
        s.replace(at, from.size(), to);
        at += to.size();
    }
    return s;
}

TEST(FleetJob, TracesByteIdenticalAcrossJobCounts)
{
    auto specs = fleetSpecs();
    const std::string baseA = tmpFile("fleet_j1");
    const std::string baseB = tmpFile("fleet_j3");

    super::JobOptions jo;
    jo.jobs = 1;
    auto one = super::runFleetJob(specs, baseA, jo);
    ASSERT_TRUE(one.ok) << one.error;

    jo.jobs = 3;
    auto many = super::runFleetJob(specs, baseB, jo);
    ASSERT_TRUE(many.ok) << many.error;

    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto a = readFileBytes(super::fleetTracePath(baseA, i));
        auto b = readFileBytes(super::fleetTracePath(baseB, i));
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "trace " << i
                        << " differs between --jobs 1 and --jobs 3";
    }

    // The CSVs differ only in the embedded trace paths.
    auto csvA = readFileBytes(baseA + ".csv");
    auto csvB = readFileBytes(baseB + ".csv");
    ASSERT_FALSE(csvA.empty());
    EXPECT_EQ(replaceAll(std::string(csvA.begin(), csvA.end()), baseA,
                         baseB),
              std::string(csvB.begin(), csvB.end()));
}

TEST(FleetJob, TraceMatchesPlainSequentialReplay)
{
    auto specs = fleetSpecs();
    const std::string base = tmpFile("fleet_seq");
    super::JobOptions jo;
    jo.jobs = 2;
    auto res = super::runFleetJob(specs, base, jo);
    ASSERT_TRUE(res.ok) << res.error;

    // Replay spec 1 by hand, streaming through the same packed writer
    // — the fleet trace must be exactly this, no scheduling artifacts.
    core::Session sess = core::PalmSimulator::collect(specs[1].config);
    const std::string ref = tmpFile("fleet_seq_ref.ptpk");
    trace::PackedTraceWriter writer(ref,
                                    trace::kPackedDefaultBlockCapacity);
    ASSERT_TRUE(writer.ok());
    trace::PackedWriterSink sink(writer);
    core::ReplayConfig cfg;
    cfg.extraRefSink = &sink;
    auto rr = core::PalmSimulator::replaySession(sess, cfg);
    ASSERT_FALSE(rr.replayStats.interrupted);
    ASSERT_TRUE(writer.close());

    EXPECT_EQ(readFileBytes(super::fleetTracePath(base, 1)),
              readFileBytes(ref));
}

TEST(FleetJob, SavedSessionsRoundTrip)
{
    auto specs = fleetSpecs();
    specs.resize(1);
    const std::string base = tmpFile("fleet_save");
    super::JobOptions jo;
    jo.jobs = 1;
    super::FleetOptions fo;
    fo.saveSessions = true;
    auto res = super::runFleetJob(specs, base, jo, fo);
    ASSERT_TRUE(res.ok) << res.error;

    core::Session back;
    ASSERT_TRUE(core::Session::load(base + "-session-0", back).ok());
    core::Session want = core::PalmSimulator::collect(specs[0].config);
    EXPECT_EQ(back.initialState.fingerprint(),
              want.initialState.fingerprint());
    EXPECT_EQ(back.finalState.fingerprint(),
              want.finalState.fingerprint());
}

TEST(FleetJob, ResumedRunIsByteIdentical)
{
    auto specs = fleetSpecs();
    const std::string base = tmpFile("fleet_resume");
    const std::string csv = base + ".csv";
    const std::string j1 = tmpFile("fleet_resume.ptjl");

    super::JobOptions jo;
    jo.jobs = 2;
    jo.journalPath = j1;
    auto full = super::runFleetJob(specs, base, jo);
    ASSERT_TRUE(full.ok) << full.error;
    std::vector<u8> refCsv = readFileBytes(csv);
    ASSERT_FALSE(refCsv.empty());
    std::vector<std::vector<u8>> refTraces;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        refTraces.push_back(
            readFileBytes(super::fleetTracePath(base, i)));
        ASSERT_FALSE(refTraces.back().empty());
    }

    // Craft the journal a crash after one Done item would leave, drop
    // the finalized CSV and the unfinished items' traces, and resume.
    super::JournalData data;
    ASSERT_TRUE(super::loadJournal(j1, data).ok());
    const std::string j2 = tmpFile("fleet_resume_partial.ptjl");
    {
        super::JournalWriter w;
        ASSERT_TRUE(w.open(j2, data.spec));
        for (const auto &rec : data.records) {
            if (rec.state == super::ItemState::Done && rec.item == 0) {
                ASSERT_TRUE(w.appendItem(rec));
                break;
            }
        }
    }
    std::remove(csv.c_str());
    for (std::size_t i = 1; i < specs.size(); ++i)
        std::remove(super::fleetTracePath(base, i).c_str());

    auto resumed = super::resumeJob(j2, super::JobOptions{});
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.super.itemsSkipped, 1u);
    EXPECT_EQ(resumed.super.itemsDone, specs.size() - 1);
    EXPECT_EQ(readFileBytes(csv), refCsv);
    EXPECT_EQ(resumed.outFnv, full.outFnv);
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(readFileBytes(super::fleetTracePath(base, i)),
                  refTraces[i])
            << "trace " << i << " differs after resume";

    // The finalized journal reports nothing left to do.
    auto done = super::resumeJob(j1, super::JobOptions{});
    EXPECT_TRUE(done.ok);
    EXPECT_TRUE(done.nothingToDo);
}

} // namespace
} // namespace pt
