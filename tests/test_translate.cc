/**
 * @file
 * Translation-cache differential suite (DESIGN.md §15).
 *
 * The translation cache is only allowed to exist because it is
 * bit-identical to the interpreter; every test here is a referee for
 * that claim. Whole-session replays are compared byte-for-byte
 * (packed trace, checkpoint fingerprints, instruction and cycle
 * totals) across engines and across epoch-parallel job counts;
 * randomized legal instruction sequences run in lockstep on both
 * engines with shrink-on-failure disassembly; self-modifying-code
 * edges (same block, adjacent block, patched extension words) and
 * checkpoint-restore invalidation are exercised on the real device;
 * and the flat page-table bus is probed at every region edge where
 * the old range classifier read one byte past the end.
 */

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "device/checkpoint.h"
#include "device/device.h"
#include "epoch/epochplan.h"
#include "epoch/epochrunner.h"
#include "m68k/disasm.h"
#include "m68k/execmode.h"
#include "os/guestrun.h"
#include "testutil.h"
#include "trace/packedtrace.h"
#include "trace/tracediff.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

using m68k::Cond;
using m68k::ExecMode;
using m68k::Size;
namespace ops = m68k::ops;

/** Scoped override of the process-default execution engine. */
struct ModeGuard
{
    explicit ModeGuard(ExecMode m)
        : prev(m68k::defaultExecMode())
    {
        m68k::setDefaultExecMode(m);
    }
    ~ModeGuard() { m68k::setDefaultExecMode(prev); }
    ExecMode prev;
};

workload::UserModelConfig
sessionCfg(u64 seed)
{
    workload::UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 4;
    cfg.meanIdleTicks = 2'000;
    return cfg;
}

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

/** Profiled replay into a packed trace, returning the full result. */
core::ReplayResult
packedReplay(const core::Session &s, const std::string &path)
{
    trace::PackedTraceWriter w(path);
    trace::PackedWriterSink sink(w);
    core::ReplayConfig cfg;
    cfg.extraRefSink = &sink;
    core::ReplayResult r = core::PalmSimulator::replaySession(s, cfg);
    EXPECT_TRUE(w.close());
    return r;
}

// ---------------------------------------------------------------------
// Whole-session differential: the acceptance gate. A full collected
// session replayed under the translator must produce a byte-identical
// packed trace (trace-diff oracle AND raw cmp), the same snapshot
// fingerprint, and the same instruction/cycle/reference totals.
// ---------------------------------------------------------------------

TEST(TranslateDifferential, SessionReplayBitIdentical)
{
    core::Session s;
    std::string seqPath = tmpFile("pt_tr_seq.ptpk");
    core::ReplayResult interp;
    {
        ModeGuard g(ExecMode::Interp);
        s = core::PalmSimulator::collect(sessionCfg(21));
        interp = packedReplay(s, seqPath);
    }
    ASSERT_GT(interp.refs.totalRefs(), 0u);

    std::string trPath = tmpFile("pt_tr_trans.ptpk");
    core::ReplayResult trans;
    {
        ModeGuard g(ExecMode::Translate);
        trans = packedReplay(s, trPath);
    }

    trace::DiffResult diff = trace::diffTraces(seqPath, trPath);
    EXPECT_EQ(diff.outcome, trace::DiffOutcome::Identical)
        << diff.detail;

    std::vector<u8> seqBytes = readFileBytes(seqPath);
    std::vector<u8> trBytes = readFileBytes(trPath);
    ASSERT_FALSE(seqBytes.empty());
    EXPECT_TRUE(seqBytes == trBytes)
        << "packed traces are not byte-identical";

    EXPECT_EQ(trans.finalState.fingerprint(),
              interp.finalState.fingerprint());
    EXPECT_EQ(trans.instructions, interp.instructions);
    EXPECT_EQ(trans.cycles, interp.cycles);
    EXPECT_EQ(trans.refs.totalRefs(), interp.refs.totalRefs());
    EXPECT_EQ(trans.refs.ramRefs(), interp.refs.ramRefs());
    EXPECT_EQ(trans.refs.flashRefs(), interp.refs.flashRefs());

    std::remove(seqPath.c_str());
    std::remove(trPath.c_str());
}

TEST(TranslateDifferential, EpochRunsMatchInterpreterAtJobs1And8)
{
    core::Session s;
    std::string seqPath = tmpFile("pt_tr_epoch_seq.ptpk");
    epoch::ScanResult scan;
    {
        // Baseline AND plan come from the interpreter, so the workers'
        // checkpoint-fingerprint handoffs are verified cross-engine.
        ModeGuard g(ExecMode::Interp);
        s = core::PalmSimulator::collect(sessionCfg(23));
        packedReplay(s, seqPath);
        epoch::ScanOptions so;
        so.epochs = 3;
        scan = epoch::scanSession(s, so);
    }
    ASSERT_TRUE(scan.ok) << scan.error;
    ASSERT_GE(scan.plan.epochCount(), 2u);
    std::vector<u8> seqBytes = readFileBytes(seqPath);
    ASSERT_FALSE(seqBytes.empty());

    for (unsigned jobs : {1u, 8u}) {
        ModeGuard g(ExecMode::Translate);
        std::string out = tmpFile("pt_tr_epoch_par.ptpk");
        epoch::RunOptions ro;
        ro.jobs = jobs;
        epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
        ASSERT_TRUE(run.ok) << run.error;
        EXPECT_TRUE(run.divergences.empty()) << "jobs=" << jobs;
        for (const auto &e : run.epochs)
            EXPECT_TRUE(e.verified)
                << "epoch " << e.epoch << " at jobs=" << jobs;

        trace::DiffResult diff = trace::diffTraces(seqPath, out);
        EXPECT_EQ(diff.outcome, trace::DiffOutcome::Identical)
            << "jobs=" << jobs << ": " << diff.detail;
        EXPECT_TRUE(readFileBytes(out) == seqBytes)
            << "stitched translate trace differs at jobs=" << jobs;
        std::remove(out.c_str());
    }
    std::remove(seqPath.c_str());
}

// ---------------------------------------------------------------------
// Randomized property tests: seeded legal instruction sequences run in
// lockstep on both engines. On divergence the failing program is
// shrunk (trailing instructions dropped while the divergence persists)
// and disassembled into the failure message.
// ---------------------------------------------------------------------

constexpr Addr kDataBase = 0x40000;

struct Rng
{
    explicit Rng(u64 seed)
        : s(seed * 0x9E3779B97F4A7C15ull | 1)
    {}
    u64
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    u64 s;
};

/** Emits one record's instruction(s). Every case is legal, cannot
 *  fault, and terminates: stores stay inside the data area, loop
 *  counters are distinct from loop bodies, divisors are forced
 *  nonzero. */
void
emitRecord(m68k::CodeBuilder &b, u64 r)
{
    static const Size kSizes[3] = {Size::B, Size::W, Size::L};
    int x = static_cast<int>((r >> 8) & 7);
    int y = static_cast<int>((r >> 16) & 7);
    Size sz = kSizes[(r >> 24) % 3];
    u32 imm = static_cast<u32>(r >> 32);
    switch (r & 15) {
      case 0:
        b.moveq(static_cast<s8>(r >> 8), y);
        break;
      case 1:
        b.move(sz, ops::dr(x), ops::dr(y));
        break;
      case 2:
        b.add(sz, ops::dr(x), ops::dr(y));
        break;
      case 3:
        b.sub(sz, ops::dr(x), ops::dr(y));
        break;
      case 4:
        b.and_(sz, ops::dr(x), ops::dr(y));
        break;
      case 5:
        b.or_(sz, ops::dr(x), ops::dr(y));
        break;
      case 6:
        b.eor(sz, x, ops::dr(y));
        break;
      case 7:
        b.addi(sz, imm, ops::dr(y));
        break;
      case 8: {
        int count = 1 + static_cast<int>((r >> 32) % 8);
        switch ((r >> 28) & 7) {
          case 0: b.lsl(sz, count, y); break;
          case 1: b.lsr(sz, count, y); break;
          case 2: b.asl(sz, count, y); break;
          case 3: b.asr(sz, count, y); break;
          case 4: b.rol(sz, count, y); break;
          case 5: b.ror(sz, count, y); break;
          default: b.lslr(sz, x, y, ((r >> 31) & 1) != 0); break;
        }
        break;
      }
      case 9:
        switch ((r >> 28) % 6) {
          case 0: b.ext(sz == Size::B ? Size::W : sz, y); break;
          case 1: b.swap(y); break;
          case 2: b.not_(sz, ops::dr(y)); break;
          case 3: b.neg(sz, ops::dr(y)); break;
          case 4: b.clr(sz, ops::dr(y)); break;
          default: b.tst(sz, ops::dr(y)); break;
        }
        break;
      case 10:
        b.cmp(sz, ops::dr(x), y);
        break;
      case 11:
        b.move(sz, ops::dr(x), ops::ind(6));
        break;
      case 12:
        b.move(sz, ops::ind(5), ops::dr(x));
        break;
      case 13:
        b.move(Size::L, ops::dr(x), ops::postinc(6));
        b.move(Size::L, ops::predec(6), ops::dr(y));
        break;
      case 14: {
        // Forward conditional over one instruction; taken or not,
        // both engines converge at the bound label. Cond::F would
        // assemble as BSR, so conditions start at HI.
        Cond c = static_cast<Cond>(2 + ((r >> 28) % 14));
        int skip = b.newLabel();
        b.bcc(c, skip);
        b.moveq(static_cast<s8>(r >> 40), x);
        b.bind(skip);
        break;
      }
      default: {
        // A short DBRA loop; the counter register must differ from
        // the body register or the loop would never terminate.
        if (y == x)
            y = (x + 1) & 7;
        b.moveq(static_cast<s8>((r >> 32) % 5), x);
        int loop = b.hereLabel();
        b.addq(Size::L, 1, ops::dr(y));
        b.dbra(x, loop);
        break;
      }
    }
}

m68k::CodeBuilder
buildProgram(const std::vector<u64> &recs)
{
    m68k::CodeBuilder b(test::CpuHarness::kCodeBase);
    b.lea(ops::absl(kDataBase), 6);
    b.lea(ops::absl(kDataBase + 0x200), 5);
    for (int i = 0; i < 8; ++i)
        b.move(Size::L, ops::imm(0x11223344u + 0x01010101u *
                                 static_cast<u32>(i)), ops::dr(i));
    for (u64 r : recs)
        emitRecord(b, r);
    b.stop(0x2700);
    return b;
}

bool
sameCpuState(const m68k::Cpu &a, const m68k::Cpu &b)
{
    for (int i = 0; i < 8; ++i)
        if (a.d(i) != b.d(i) || a.a(i) != b.a(i))
            return false;
    return a.pc() == b.pc() && a.sr() == b.sr() &&
           a.totalCycles() == b.totalCycles() &&
           a.instructionsRetired() == b.instructionsRetired() &&
           a.stopped() == b.stopped();
}

struct LockstepResult
{
    s64 divergeStep = -1; ///< -1: engines agreed all the way
    std::string detail;
    m68k::translate::CacheStats stats;
};

LockstepResult
runLockstep(const std::vector<u64> &recs, u64 maxSteps = 4000)
{
    LockstepResult res;
    test::CpuHarness hi;
    test::CpuHarness ht;
    hi.cpu.setExecMode(ExecMode::Interp);
    ht.cpu.setExecMode(ExecMode::Translate);
    m68k::CodeBuilder bi = buildProgram(recs);
    m68k::CodeBuilder bt = buildProgram(recs);
    hi.load(bi);
    ht.load(bt);

    for (u64 s = 0; s < maxSteps; ++s) {
        if (hi.cpu.stopped() && ht.cpu.stopped())
            break;
        hi.cpu.step();
        ht.cpu.step();
        if (!sameCpuState(hi.cpu, ht.cpu)) {
            std::ostringstream os;
            os << "step " << s << ": interp pc=" << std::hex
               << hi.cpu.pc() << " sr=" << hi.cpu.sr()
               << " cycles=" << std::dec << hi.cpu.totalCycles()
               << " vs translate pc=" << std::hex << ht.cpu.pc()
               << " sr=" << ht.cpu.sr() << " cycles=" << std::dec
               << ht.cpu.totalCycles();
            for (int i = 0; i < 8; ++i)
                if (hi.cpu.d(i) != ht.cpu.d(i))
                    os << " d" << i << "=" << std::hex << hi.cpu.d(i)
                       << "/" << ht.cpu.d(i) << std::dec;
            res.divergeStep = static_cast<s64>(s);
            res.detail = os.str();
            res.stats = ht.cpu.translateStats();
            return res;
        }
    }
    if (!hi.cpu.stopped() || !ht.cpu.stopped()) {
        res.divergeStep = static_cast<s64>(maxSteps);
        res.detail = "program did not reach STOP on both engines";
        res.stats = ht.cpu.translateStats();
        return res;
    }
    for (Addr a = kDataBase; a < kDataBase + 0x400; ++a) {
        if (hi.bus.peek8(a) != ht.bus.peek8(a)) {
            std::ostringstream os;
            os << "data byte differs at " << std::hex << a;
            res.divergeStep = 0;
            res.detail = os.str();
            break;
        }
    }
    res.stats = ht.cpu.translateStats();
    return res;
}

/** Disassembles a failing program for the test log. */
std::string
disassembleProgram(const std::vector<u64> &recs)
{
    test::CpuHarness h;
    m68k::CodeBuilder b = buildProgram(recs);
    std::vector<u8> bytes = b.finalize();
    h.bus.load(test::CpuHarness::kCodeBase, bytes);
    std::ostringstream os;
    Addr at = test::CpuHarness::kCodeBase;
    Addr end = at + static_cast<Addr>(bytes.size());
    while (at < end) {
        m68k::DisasmResult d = m68k::disassemble(h.bus, at);
        os << "  " << std::hex << at << std::dec << ": " << d.text
           << "\n";
        at += d.length;
    }
    return os.str();
}

TEST(TranslateRandomized, SeededProgramsMatchInterpreterInLockstep)
{
    u64 cacheHits = 0;
    for (u64 seed = 1; seed <= 24; ++seed) {
        Rng rng(seed);
        std::vector<u64> recs(10 + rng.next() % 30);
        for (u64 &r : recs)
            r = rng.next();

        LockstepResult res = runLockstep(recs);
        cacheHits += res.stats.hits;
        if (res.divergeStep < 0)
            continue;

        // Shrink: drop trailing instructions while the divergence
        // persists, then report the minimal program's disassembly.
        std::vector<u64> minimal = recs;
        while (minimal.size() > 1) {
            std::vector<u64> cand(minimal.begin(), minimal.end() - 1);
            if (runLockstep(cand).divergeStep < 0)
                break;
            minimal = cand;
        }
        LockstepResult minRes = runLockstep(minimal);
        FAIL() << "seed " << seed << " diverged: " << res.detail
               << "\nminimal program (" << minimal.size()
               << " records): " << minRes.detail << "\n"
               << disassembleProgram(minimal);
    }
    // The property run is only meaningful if the translator actually
    // served micro-ops from cached blocks.
    EXPECT_GT(cacheHits, 0u);
}

// ---------------------------------------------------------------------
// Self-modifying code on the real device: writes into the executing
// block, into an already-translated adjacent block, and into a later
// instruction's extension words must all retranslate and land on the
// interpreter's exact trace.
// ---------------------------------------------------------------------

struct GuestResult
{
    u32 d[8] = {0};
    u64 cycles = 0;
    u64 instret = 0;
    u64 ramRefs = 0;
    u64 flashRefs = 0;
    m68k::translate::CacheStats stats;
};

GuestResult
runGuest(ExecMode mode,
         const std::function<void(m68k::CodeBuilder &)> &emit)
{
    device::Device dev;
    dev.cpu().setExecMode(mode);
    os::GuestRunner runner(dev);
    runner.run(emit);
    GuestResult g;
    for (int i = 0; i < 8; ++i)
        g.d[i] = dev.cpu().d(i);
    g.cycles = dev.cpu().totalCycles();
    g.instret = dev.instructionsRetired();
    g.ramRefs = dev.bus().ramRefs();
    g.flashRefs = dev.bus().flashRefs();
    g.stats = dev.cpu().translateStats();
    return g;
}

void
expectGuestsMatch(const GuestResult &i, const GuestResult &t)
{
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(t.d[r], i.d[r]) << "d" << r;
    EXPECT_EQ(t.cycles, i.cycles);
    EXPECT_EQ(t.instret, i.instret);
    EXPECT_EQ(t.ramRefs, i.ramRefs);
    EXPECT_EQ(t.flashRefs, i.flashRefs);
}

TEST(TranslateSmc, WriteIntoExecutingBlockRetranslates)
{
    // The store patches "moveq #1,d0" (later in the SAME block) into
    // "moveq #2,d0" before execution reaches it.
    auto emit = [](m68k::CodeBuilder &b) {
        int patch = b.newLabel();
        b.lea(ops::abslbl(patch), 0);
        b.move(Size::W, ops::imm(0x7002), ops::ind(0));
        b.bind(patch);
        b.moveq(1, 0);
        b.stop(0x2700);
    };
    GuestResult interp = runGuest(ExecMode::Interp, emit);
    GuestResult trans = runGuest(ExecMode::Translate, emit);
    EXPECT_EQ(interp.d[0], 2u);
    EXPECT_EQ(trans.d[0], 2u);
    expectGuestsMatch(interp, trans);
    // The patch falls mid-block, so the cursor misses and a fresh
    // block is decoded at the patched pc: at least two translations.
    EXPECT_GE(trans.stats.translations, 2u)
        << "the patched block was never retranslated";
}

TEST(TranslateSmc, WriteIntoAdjacentBlockRetranslates)
{
    // Pass 1 executes (and caches) the entry block with "moveq #1,d1";
    // a separate block then patches it to "moveq #5,d1" and loops
    // back, so pass 2 must find the cached entry block stale and run
    // the rewritten code. The leading bra makes entry a block start
    // on pass 1, so the patch invalidates an already-cached block.
    auto emit = [](m68k::CodeBuilder &b) {
        int entry = b.newLabel();
        int done = b.newLabel();
        b.moveq(0, 7);
        b.bra(entry);
        b.bind(entry);
        b.moveq(1, 1);
        b.addq(Size::L, 1, ops::dr(7));
        b.cmpi(Size::L, 2, ops::dr(7));
        b.bcc(Cond::EQ, done);
        b.lea(ops::abslbl(entry), 0);
        b.move(Size::W, ops::imm(0x7205), ops::ind(0));
        b.bra(entry);
        b.bind(done);
        b.stop(0x2700);
    };
    GuestResult interp = runGuest(ExecMode::Interp, emit);
    GuestResult trans = runGuest(ExecMode::Translate, emit);
    EXPECT_EQ(interp.d[1], 5u);
    EXPECT_EQ(interp.d[7], 2u);
    expectGuestsMatch(interp, trans);
    EXPECT_GT(trans.stats.stale, 0u);
}

TEST(TranslateSmc, ExtensionWordPatchIsFetchedFresh)
{
    // Only the 32-bit immediate (the extension words of a later
    // instruction in the same block) is overwritten — the opcode word
    // survives, so this specifically checks that cached extension-word
    // fetches revalidate the window generation.
    auto emit = [](m68k::CodeBuilder &b) {
        int patch = b.newLabel();
        b.lea(ops::abslbl(patch), 0);
        b.addq(Size::L, 2, ops::ar(0));
        b.move(Size::L, ops::imm(0x22222222), ops::ind(0));
        b.bind(patch);
        b.move(Size::L, ops::imm(0x11111111), ops::dr(2));
        b.stop(0x2700);
    };
    GuestResult interp = runGuest(ExecMode::Interp, emit);
    GuestResult trans = runGuest(ExecMode::Translate, emit);
    EXPECT_EQ(interp.d[2], 0x22222222u);
    EXPECT_EQ(trans.d[2], 0x22222222u);
    expectGuestsMatch(interp, trans);
}

// ---------------------------------------------------------------------
// Checkpoint restore must invalidate translations: after thawing, RAM
// holds different code at the same pc, and a stale block would replay
// the pre-restore program.
// ---------------------------------------------------------------------

TEST(TranslateInvalidate, CheckpointRestoreDropsStaleBlocks)
{
    constexpr Addr kScratch = 0xE000;
    u64 fp[2] = {0, 0};
    u32 d3[2] = {0, 0};
    int idx = 0;
    for (ExecMode mode : {ExecMode::Interp, ExecMode::Translate}) {
        device::Device dev;
        dev.cpu().setExecMode(mode);
        os::GuestRunner runner(dev);

        runner.run([](m68k::CodeBuilder &b) {
            b.moveq(11, 3);
            b.stop(0x2700);
        });
        EXPECT_EQ(dev.cpu().d(3), 11u);
        device::Checkpoint cp = device::Checkpoint::capture(dev);

        // A different program at the same address (pokes invalidate).
        runner.run([](m68k::CodeBuilder &b) {
            b.moveq(22, 3);
            b.stop(0x2700);
        });
        EXPECT_EQ(dev.cpu().d(3), 22u);

        // Thaw and re-enter WITHOUT re-poking the code: the engine
        // must execute the restored program, not a cached block of
        // the replaced one.
        cp.restore(dev);
        dev.cpu().setD(3, 0);
        dev.cpu().wake();
        dev.cpu().setSr(0x2700);
        dev.cpu().setPc(kScratch);
        u64 limit = dev.nowCycles() + 10'000'000;
        while (!dev.cpu().stopped() && !dev.halted() &&
               dev.nowCycles() < limit)
            dev.runCycles(10'000);

        d3[idx] = dev.cpu().d(3);
        fp[idx] = device::Checkpoint::capture(dev).fingerprint();
        ++idx;
    }
    EXPECT_EQ(d3[0], 11u) << "interpreter baseline";
    EXPECT_EQ(d3[1], 11u)
        << "translator replayed a stale pre-restore block";
    EXPECT_EQ(fp[1], fp[0])
        << "post-restore checkpoint fingerprints differ by engine";
}

TEST(TranslateStats, CacheCountersBehave)
{
    test::CpuHarness h;
    h.cpu.setExecMode(ExecMode::Translate);
    m68k::CodeBuilder b = test::codeAt();
    b.moveq(10, 0);
    int loop = b.hereLabel();
    b.addq(Size::L, 1, ops::dr(1));
    b.dbra(0, loop);
    b.stop(0x2700);
    h.load(b);
    h.run();
    EXPECT_EQ(h.cpu.d(1), 11u);
    m68k::translate::CacheStats st = h.cpu.translateStats();
    EXPECT_GT(st.translations, 0u);
    EXPECT_GT(st.hits, 0u) << "the loop body never hit the cache";

    // Switching back to the interpreter must not grow the counters.
    h.cpu.setExecMode(ExecMode::Interp);
    m68k::CodeBuilder b2 = test::codeAt();
    b2.moveq(3, 0);
    b2.stop(0x2700);
    h.load(b2);
    h.run();
    m68k::translate::CacheStats st2 = h.cpu.translateStats();
    EXPECT_EQ(st2.translations, st.translations);
    EXPECT_EQ(st2.hits, st.hits);
}

// ---------------------------------------------------------------------
// Region-edge boundary contract: a 16-bit access whose two bytes land
// in different regions is a bus error (returns 0 / write ignored),
// never a one-byte-past-the-end host access. These addresses are
// exactly where the old range classifier indexed ram[kRamSize].
// ---------------------------------------------------------------------

TEST(BusBoundary, RamEdgeWordAccesses)
{
    device::Device dev;
    device::Bus &bus = dev.bus();
    bus.poke8(device::kRamSize - 2, 0xCD);
    bus.poke8(device::kRamSize - 1, 0xAB);

    u64 ram0 = bus.ramRefs();
    EXPECT_EQ(bus.read16(device::kRamSize - 2, m68k::AccessKind::Read),
              0xCDABu);
    EXPECT_EQ(bus.ramRefs(), ram0 + 1);

    // The last byte of RAM cannot start a word access: bus error.
    u64 total0 = bus.totalRefs();
    EXPECT_EQ(bus.read16(device::kRamSize - 1, m68k::AccessKind::Read),
              0u);
    EXPECT_EQ(bus.totalRefs(), total0);

    // The straddling write is ignored entirely — the old classifier
    // committed its high byte to ram[kRamSize - 1] and wrote the low
    // byte out of bounds.
    bus.write16(device::kRamSize - 1, 0xBEEF);
    EXPECT_EQ(bus.peek8(device::kRamSize - 1), 0xAB);
    EXPECT_EQ(bus.totalRefs(), total0);

    // Byte accesses to the last RAM byte remain valid.
    EXPECT_EQ(bus.read8(device::kRamSize - 1, m68k::AccessKind::Read),
              0xAB);
}

TEST(BusBoundary, RomEdgeWordAccesses)
{
    device::Device dev;
    device::Bus &bus = dev.bus();
    const Addr last = device::kRomBase + device::kRomSize - 1;
    bus.poke8(last - 1, 0x12);
    bus.poke8(last, 0x34);

    u64 flash0 = bus.flashRefs();
    EXPECT_EQ(bus.read16(last - 1, m68k::AccessKind::Read), 0x1234u);
    EXPECT_EQ(bus.flashRefs(), flash0 + 1);

    u64 total0 = bus.totalRefs();
    EXPECT_EQ(bus.read16(last, m68k::AccessKind::Read), 0u);
    EXPECT_EQ(bus.totalRefs(), total0);
    EXPECT_EQ(bus.read8(last, m68k::AccessKind::Read), 0x34);
}

TEST(BusBoundary, UnmappedHolesAndMmio)
{
    device::Device dev;
    device::Bus &bus = dev.bus();

    // First byte past RAM, last byte before ROM: both unmapped.
    u64 total0 = bus.totalRefs();
    EXPECT_EQ(bus.read8(device::kRamSize, m68k::AccessKind::Read), 0u);
    EXPECT_EQ(bus.read8(device::kRomBase - 1, m68k::AccessKind::Read),
              0u);
    // The hole just below the MMIO window in the mixed top page.
    EXPECT_EQ(bus.read16(0xFFFFEFFEu, m68k::AccessKind::Read), 0u);
    EXPECT_EQ(bus.totalRefs(), total0);

    // MMIO still decodes, including the very top register word.
    u64 mmio0 = bus.mmioRefs();
    bus.read16(device::kMmioBase + device::Reg::IntStat,
               m68k::AccessKind::Read);
    bus.read16(0xFFFFFFFEu, m68k::AccessKind::Read);
    EXPECT_EQ(bus.mmioRefs(), mmio0 + 2);
}

TEST(BusBoundary, OddInteriorWordAccessesPreserved)
{
    // Interior odd word accesses (not at a region edge) keep their
    // historical byte-pair semantics.
    device::Device dev;
    device::Bus &bus = dev.bus();
    bus.poke8(0x2001, 0x11);
    bus.poke8(0x2002, 0x22);
    EXPECT_EQ(bus.read16(0x2001, m68k::AccessKind::Read), 0x1122u);
    bus.write16(0x3001, 0xA55A);
    EXPECT_EQ(bus.peek8(0x3001), 0xA5);
    EXPECT_EQ(bus.peek8(0x3002), 0x5A);
}

} // namespace
} // namespace pt
