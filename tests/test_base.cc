/**
 * @file
 * Unit tests for the base utilities: RNG determinism, FNV hashing,
 * binary I/O round-trips, statistics, and table rendering.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "base/binio.h"
#include "base/fnv.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/table.h"

namespace pt
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        u64 v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng r(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(10.0));
    EXPECT_NEAR(sum / n, 10.0, 1.5);
}

TEST(Fnv, KnownVector)
{
    // FNV-1a of the empty string is the offset basis.
    Fnv64 f;
    EXPECT_EQ(f.value(), Fnv64::kOffset);
    // "a" has a published value.
    f.updateString("a");
    EXPECT_EQ(f.value(), 0xAF63DC4C8601EC8Cull);
}

TEST(Fnv, OrderSensitive)
{
    Fnv64 a, b;
    a.updateString("ab");
    b.updateString("ba");
    EXPECT_NE(a.value(), b.value());
}

TEST(BinIo, ScalarRoundTrip)
{
    BinWriter w;
    w.put8(0xAB);
    w.put16(0x1234);
    w.put32(0xDEADBEEF);
    w.put64(0x0123456789ABCDEFull);
    w.putString("palmtrace");

    BinReader r(w.takeBytes());
    EXPECT_EQ(r.get8(), 0xAB);
    EXPECT_EQ(r.get16(), 0x1234);
    EXPECT_EQ(r.get32(), 0xDEADBEEFu);
    EXPECT_EQ(r.get64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getString(), "palmtrace");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(BinIo, ShortReadSetsFailure)
{
    BinWriter w;
    w.put16(7);
    BinReader r(w.takeBytes());
    r.get32();
    EXPECT_FALSE(r.ok());
}

TEST(BinIo, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/pt_binio_test.bin";
    BinWriter w;
    w.put32(0xC0FFEE);
    w.putString("session");
    ASSERT_TRUE(w.writeFile(path));

    BinReader r({});
    ASSERT_TRUE(BinReader::readFile(path, r));
    EXPECT_EQ(r.get32(), 0xC0FFEEu);
    EXPECT_EQ(r.getString(), "session");
    std::remove(path.c_str());
}

TEST(Stats, SummaryMoments)
{
    stats::Summary s;
    for (int i = 1; i <= 9; ++i)
        s.add(i);
    EXPECT_EQ(s.count(), 9u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.5820, 1e-3);
}

TEST(Stats, SummaryEmptyIsAllZeros)
{
    stats::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, SummarySingleSample)
{
    stats::Summary s;
    s.add(-7.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), -7.5);
    EXPECT_DOUBLE_EQ(s.min(), -7.5);
    EXPECT_DOUBLE_EQ(s.max(), -7.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, SummaryHandlesNegatives)
{
    stats::Summary s;
    for (double v : {-3.0, -1.0, 1.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(5.0), 1e-12);
}

TEST(Stats, SummaryStddevStableUnderLargeOffset)
{
    // The naive sum-of-squares recurrence catastrophically cancels
    // here; Welford's recurrence must not. Samples {0,1,2} shifted by
    // 1e9 keep the population stddev sqrt(2/3).
    stats::Summary s;
    s.add(1e9);
    s.add(1e9 + 1.0);
    s.add(1e9 + 2.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0 / 3.0), 1e-9);
    EXPECT_DOUBLE_EQ(s.mean(), 1e9 + 1.0);
}

TEST(Stats, SummaryResetClears)
{
    stats::Summary s;
    s.add(5.0);
    s.add(6.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
}

TEST(Stats, HistogramEmpty)
{
    stats::Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.stats().count(), 0u);
}

TEST(Stats, HistogramSingleSampleMoments)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.add(4.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.stats().mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.stats().stddev(), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.5);
    h.add(9.5);
    h.add(10.0); // boundary goes to overflow
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Stats, CounterSet)
{
    stats::CounterSet c;
    c["refs.ram"] += 3;
    c["refs.flash"] += 5;
    EXPECT_EQ(c.get("refs.ram"), 3u);
    EXPECT_EQ(c.get("missing"), 0u);
    std::string d = c.dump();
    EXPECT_NE(d.find("refs.flash = 5"), std::string::npos);
}

TEST(Table, RenderAlignsColumns)
{
    TextTable t("Demo");
    t.setHeader({"Session", "Events"});
    t.addRow({"1", "1243"});
    t.addRow({"2", "933"});
    std::string s = t.render();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("Session"), std::string::npos);
    EXPECT_NE(s.find("1243"), std::string::npos);
}

TEST(Table, CsvEscapes)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"x,y", "q\"z"});
    std::string s = t.renderCsv();
    EXPECT_NE(s.find("\"x,y\""), std::string::npos);
    EXPECT_NE(s.find("\"q\"\"z\""), std::string::npos);
}

TEST(Table, HmsFormatsLikeThePaper)
{
    // Table 1 shows 24:34:31 for an 88471-second session.
    EXPECT_EQ(TextTable::hms(24 * 3600 + 34 * 60 + 31), "24:34:31");
    EXPECT_EQ(TextTable::hms(141 * 3600 + 27 * 60 + 26), "141:27:26");
    EXPECT_EQ(TextTable::hms(59), "0:00:59");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(2.3456, 2), "2.35");
    EXPECT_EQ(TextTable::num(1234ull), "1234");
    EXPECT_EQ(TextTable::percent(0.5, 1), "50.0%");
}

} // namespace
} // namespace pt
