/**
 * @file
 * Epoch-parallel replay tests: the plan artifact's round-trip and
 * corruption contracts, and the subsystem's one theorem — the stitched
 * epoch-parallel trace is byte-identical to a sequential profiled
 * replay at every job count — plus the boundary edge cases (a capture
 * landing exactly on a sync event's tick, mid-queue cursor handoff,
 * and an empty final epoch).
 */

#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/palmsim.h"
#include "epoch/epochplan.h"
#include "epoch/epochrunner.h"
#include "fault/faultplan.h"
#include "hacks/hackmgr.h"
#include "os/pilotos.h"
#include "trace/packedtrace.h"
#include "workload/tracefeed.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

workload::UserModelConfig
sessionCfg(u64 seed)
{
    workload::UserModelConfig cfg;
    cfg.seed = seed;
    cfg.interactions = 4;
    cfg.meanIdleTicks = 2'000;
    return cfg;
}

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

/** Writes the sequential profiled replay's packed trace — the
 *  reference stream every epoch-parallel run must reproduce. */
u64
sequentialPacked(const core::Session &s, const std::string &path)
{
    trace::PackedTraceWriter w(path);
    trace::PackedWriterSink sink(w);
    core::ReplayConfig cfg;
    cfg.extraRefSink = &sink;
    core::PalmSimulator::replaySession(s, cfg);
    u64 n = w.count();
    EXPECT_TRUE(w.close());
    return n;
}

/** A small synthetic machine checkpoint (the corruption test does not
 *  need a booted device, only a structurally valid artifact). */
device::Checkpoint
smallCheckpoint(u8 fill)
{
    device::Checkpoint c;
    c.memory.ram.assign(512, 0);
    c.memory.ram[9] = fill;
    c.memory.rom.assign(256, 0);
    c.memory.rom[0] = 0x4E;
    c.memory.rtcBase = 0x1000u + fill;
    for (int i = 0; i < 8; ++i) {
        c.cpu.d[i] = 0x100u + static_cast<u32>(i);
        c.cpu.a[i] = 0x200u + static_cast<u32>(i);
    }
    c.cpu.pc = 0x10C00200;
    c.cpu.sr = 0x2700;
    c.io.btnState = fill;
    c.cycleCount = 1000u * fill;
    return c;
}

epoch::EpochPlan
syntheticPlan()
{
    epoch::EpochPlan plan;
    plan.logFingerprint = 0x1122334455667788ull;
    plan.totalEvents = 9;
    plan.settleTicks = 100;
    plan.finalFingerprint = 0xCAFEBABEDEADBEEFull;

    epoch::EpochEntry e0;
    e0.state.machine = smallCheckpoint(1);
    e0.state.valid = true;
    e0.fingerprint = e0.state.machine.fingerprint();

    epoch::EpochEntry e1;
    e1.state.machine = smallCheckpoint(7);
    e1.state.eventIndex = 5;
    e1.state.keyStateCursor = 2;
    e1.state.seedCursor = 1;
    e1.state.buttons = 0x0003;
    e1.state.lastEventTick = 44;
    e1.state.valid = true;
    e1.fingerprint = e1.state.machine.fingerprint();

    plan.entries = {e0, e1};
    return plan;
}

TEST(EpochPlan, RoundTripPreservesEverything)
{
    epoch::EpochPlan plan = syntheticPlan();
    auto bytes = plan.serialize();

    epoch::EpochPlan back;
    LoadResult res = epoch::EpochPlan::deserialize(bytes, back);
    ASSERT_TRUE(res.ok()) << res.message();
    EXPECT_EQ(back.logFingerprint, plan.logFingerprint);
    EXPECT_EQ(back.totalEvents, plan.totalEvents);
    EXPECT_EQ(back.settleTicks, plan.settleTicks);
    EXPECT_EQ(back.finalFingerprint, plan.finalFingerprint);
    ASSERT_EQ(back.entries.size(), plan.entries.size());
    for (std::size_t i = 0; i < plan.entries.size(); ++i) {
        const auto &a = plan.entries[i];
        const auto &b = back.entries[i];
        EXPECT_EQ(b.state.eventIndex, a.state.eventIndex);
        EXPECT_EQ(b.state.keyStateCursor, a.state.keyStateCursor);
        EXPECT_EQ(b.state.seedCursor, a.state.seedCursor);
        EXPECT_EQ(b.state.buttons, a.state.buttons);
        EXPECT_EQ(b.state.lastEventTick, a.state.lastEventTick);
        EXPECT_TRUE(b.state.valid);
        EXPECT_EQ(b.fingerprint, a.fingerprint);
        EXPECT_EQ(b.state.machine.fingerprint(),
                  a.state.machine.fingerprint());
    }

    // Epoch geometry helpers read through to the entries.
    EXPECT_EQ(back.epochCount(), 2u);
    EXPECT_EQ(back.firstEvent(0), 0u);
    EXPECT_EQ(back.lastEvent(0), 5u);
    EXPECT_EQ(back.lastEvent(1), plan.totalEvents);
    EXPECT_EQ(back.expectedFingerprint(0), plan.entries[1].fingerprint);
    EXPECT_EQ(back.expectedFingerprint(1), plan.finalFingerprint);

    // File round-trip (atomic save, framed load).
    std::string path = tmpFile("pt_epoch_plan_rt.plan");
    ASSERT_TRUE(plan.save(path));
    epoch::EpochPlan fromDisk;
    ASSERT_TRUE(epoch::EpochPlan::load(path, fromDisk).ok());
    EXPECT_EQ(fromDisk.serialize(), bytes);
    std::remove(path.c_str());
}

TEST(EpochPlan, AllTruncationsAndBitFlipsRejected)
{
    auto bytes = syntheticPlan().serialize();
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        auto cut = fault::FaultPlan::truncatedAt(bytes, keep);
        epoch::EpochPlan out;
        LoadResult res = epoch::EpochPlan::deserialize(cut, out);
        ASSERT_FALSE(res.ok())
            << "truncation to " << keep << " bytes was accepted";
        ASSERT_FALSE(res.error().reason.empty());
    }
    for (std::size_t off = 0; off < bytes.size(); ++off) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto flipped =
                fault::FaultPlan::bitFlippedAt(bytes, off, bit);
            epoch::EpochPlan out;
            LoadResult res =
                epoch::EpochPlan::deserialize(flipped, out);
            ASSERT_FALSE(res.ok()) << "bit " << bit << " of byte "
                                   << off << " flipped undetected";
            ASSERT_FALSE(res.error().field.empty());
        }
    }
}

TEST(EpochPlan, MismatchedSessionRejected)
{
    core::Session a = core::PalmSimulator::collect(sessionCfg(301));
    core::Session b = core::PalmSimulator::collect(sessionCfg(302));

    epoch::ScanOptions so;
    so.epochs = 2;
    epoch::ScanResult scan = epoch::scanSession(a, so);
    ASSERT_TRUE(scan.ok) << scan.error;

    std::string out = tmpFile("pt_epoch_mismatch.ptpk");
    epoch::RunOptions ro;
    ro.jobs = 1;
    epoch::RunResult run = epoch::runEpochs(b, scan.plan, out, ro);
    EXPECT_FALSE(run.ok);
    EXPECT_NE(run.error.find("fingerprint"), std::string::npos)
        << run.error;
    std::remove(out.c_str());
}

TEST(EpochDifferential, StitchedMatchesSequentialAtJobs128)
{
    core::Session s = core::PalmSimulator::collect(sessionCfg(21));
    std::string seqPath = tmpFile("pt_epoch_seq.ptpk");
    u64 seqRefs = sequentialPacked(s, seqPath);
    std::vector<u8> seqBytes = readFileBytes(seqPath);
    ASSERT_FALSE(seqBytes.empty());
    ASSERT_GT(seqRefs, 0u);

    epoch::ScanOptions so;
    so.epochs = 4;
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;
    ASSERT_GE(scan.plan.epochCount(), 2u);

    for (unsigned jobs : {1u, 2u, 8u}) {
        std::string out = tmpFile("pt_epoch_par.ptpk");
        epoch::RunOptions ro;
        ro.jobs = jobs;

        // The heartbeat satellite: epoch-mode progress snapshots must
        // carry the worker's epoch id and the emulated cycle position.
        // Observed at jobs=1 only — the callback runs on worker
        // threads, and this test has no business locking.
        std::set<int> epochIds;
        u64 progressCalls = 0;
        bool cyclesSeen = true;
        if (jobs == 1) {
            ro.progress = [&](const replay::ReplayProgress &p) {
                epochIds.insert(p.epochId);
                ++progressCalls;
                if (p.cycles == 0 || p.finalTick == 0)
                    cyclesSeen = false;
            };
            ro.progressEveryEvents = 25;
        }

        epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
        ASSERT_TRUE(run.ok) << run.error;
        EXPECT_TRUE(run.divergences.empty());
        EXPECT_EQ(run.refs, seqRefs);
        u64 events = 0;
        for (const auto &e : run.epochs) {
            EXPECT_TRUE(e.verified) << "epoch " << e.epoch;
            events += e.events;
        }
        EXPECT_EQ(events, scan.plan.totalEvents);
        if (progressCalls > 0) {
            EXPECT_TRUE(cyclesSeen);
            for (int id : epochIds) {
                EXPECT_GE(id, 0);
                EXPECT_LT(id,
                          static_cast<int>(scan.plan.epochCount()));
            }
        }

        std::vector<u8> parBytes = readFileBytes(out);
        EXPECT_EQ(parBytes.size(), seqBytes.size())
            << "jobs=" << jobs;
        EXPECT_TRUE(parBytes == seqBytes)
            << "stitched trace differs from sequential at jobs="
            << jobs;
        std::remove(out.c_str());
    }
    std::remove(seqPath.c_str());
}

TEST(EpochDifferential, SweepConsumesStitchedTrace)
{
    core::Session s = core::PalmSimulator::collect(sessionCfg(22));
    epoch::ScanOptions so;
    so.epochs = 3;
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;

    std::string out = tmpFile("pt_epoch_sweep.ptpk");
    epoch::RunOptions ro;
    ro.jobs = 2;
    epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_TRUE(run.divergences.empty());

    // The stitched stream feeds the case-study sweep directly.
    std::vector<cache::CacheConfig> configs;
    configs.push_back({4096, 32, 1, cache::Policy::Lru});
    configs.push_back({8192, 32, 2, cache::Policy::Lru});
    workload::PackedSweepResult swept =
        workload::sweepPackedFile(out, configs, 2);
    ASSERT_TRUE(swept.status.ok()) << swept.status.message();
    EXPECT_EQ(swept.refs, run.refs);
    ASSERT_EQ(swept.caches.size(), configs.size());
    for (const auto &c : swept.caches)
        EXPECT_GT(c.stats().accesses, 0u);
    std::remove(out.c_str());
}

TEST(EpochBoundary, BoundaryExactlyOnEventTick)
{
    // A hand-built log with two key presses on the SAME tick: with a
    // one-event capture cadence, the boundary between them is frozen
    // at exactly the tick the next event fires on (zero advance), and
    // the synthetic releases repeat the collision two ticks later.
    device::Device dev;
    os::RomSymbols syms = os::setupDevice(dev);
    hacks::HackManager mgr(dev, syms);
    dev.reset();
    dev.runUntilIdle();
    mgr.installCollectionHacks();
    mgr.clearLog();
    dev.runUntilIdle();

    core::Session s;
    s.initialState = device::Snapshot::capture(dev);

    const Ticks base = dev.ticks() + 50;
    auto key = [&](Ticks tick, u16 mask) {
        trace::LogRecord r;
        r.tick = tick;
        r.type = hacks::LogType::Key;
        r.data = mask;
        s.log.records.push_back(r);
    };
    key(base, 0x0001);
    key(base, 0x0002); // same tick as the first press
    key(base + 20, 0x0001);

    epoch::ScanOptions so;
    so.everyEvents = 1; // a boundary before every single event
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;
    // 3 presses + 3 synthetic releases, a boundary before each event
    // plus the trailing capture at totalEvents.
    EXPECT_EQ(scan.plan.totalEvents, 6u);
    ASSERT_EQ(scan.plan.epochCount(), 7u);

    // The boundary before the second same-tick press was captured at
    // exactly that event's tick.
    const auto &e1 = scan.plan.entries[1].state;
    EXPECT_EQ(e1.eventIndex, 1u);
    EXPECT_EQ(e1.lastEventTick, base);
    EXPECT_EQ(static_cast<Ticks>(e1.machine.cycleCount /
                                 kCyclesPerTick),
              base);

    std::string seqPath = tmpFile("pt_epoch_tick_seq.ptpk");
    u64 seqRefs = sequentialPacked(s, seqPath);
    ASSERT_GT(seqRefs, 0u);

    std::string out = tmpFile("pt_epoch_tick_par.ptpk");
    epoch::RunOptions ro;
    ro.jobs = 2;
    epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_TRUE(run.divergences.empty());
    EXPECT_TRUE(readFileBytes(out) == readFileBytes(seqPath));
    std::remove(out.c_str());
    std::remove(seqPath.c_str());
}

TEST(EpochBoundary, QueueCursorHandoffMidQueue)
{
    // A scroll-hold-heavy session floods the KeyCurrentState queue, so
    // fine-grained boundaries land between queue pops and the cursors
    // must travel through the plan. This seed's session spends time in
    // the memo app, whose idle loop is the KeyCurrentState caller.
    workload::UserModelConfig cfg = sessionCfg(101);
    cfg.interactions = 6;
    cfg.strokeWeight = 0.1;
    cfg.tapWeight = 0.1;
    cfg.appSwitchWeight = 0.1;
    cfg.scrollHoldWeight = 0.7;
    core::Session s = core::PalmSimulator::collect(cfg);

    epoch::ScanOptions so;
    so.everyEvents = 8;
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;
    ASSERT_GT(scan.stats.keyStateOverrides, 0u)
        << "workload produced no KeyCurrentState traffic";

    bool midKeyState = false;
    bool midSeed = false;
    for (const auto &e : scan.plan.entries) {
        if (e.state.keyStateCursor > 0 &&
            e.state.keyStateCursor < scan.stats.keyStateOverrides)
            midKeyState = true;
        if (e.state.seedCursor > 0 &&
            e.state.seedCursor < scan.stats.seedsApplied)
            midSeed = true;
    }
    EXPECT_TRUE(midKeyState)
        << "no boundary landed mid-way through the key-state queue";
    if (scan.stats.seedsApplied > 1) {
        EXPECT_TRUE(midSeed)
            << "no boundary landed mid-way through the seed queue";
    }

    std::string seqPath = tmpFile("pt_epoch_queue_seq.ptpk");
    u64 seqRefs = sequentialPacked(s, seqPath);
    ASSERT_GT(seqRefs, 0u);

    std::string out = tmpFile("pt_epoch_queue_par.ptpk");
    epoch::RunOptions ro;
    ro.jobs = 4;
    epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_TRUE(run.divergences.empty());
    for (const auto &e : run.epochs)
        EXPECT_TRUE(e.verified) << "epoch " << e.epoch;
    EXPECT_TRUE(readFileBytes(out) == readFileBytes(seqPath));
    std::remove(out.c_str());
    std::remove(seqPath.c_str());
}

TEST(EpochBoundary, EmptyFinalEpochReplaysOnlyTheSettle)
{
    core::Session s = core::PalmSimulator::collect(sessionCfg(33));

    // Learn the event count, then pick a cadence that fires its last
    // capture exactly after the final event: the plan gains a trailing
    // entry at totalEvents and the last epoch replays zero events.
    epoch::ScanOptions probe;
    probe.epochs = 2;
    epoch::ScanResult first = epoch::scanSession(s, probe);
    ASSERT_TRUE(first.ok) << first.error;
    const u64 total = first.plan.totalEvents;
    ASSERT_GT(total, 0u);

    epoch::ScanOptions so;
    so.everyEvents = total;
    epoch::ScanResult scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;
    ASSERT_EQ(scan.plan.epochCount(), 2u);
    EXPECT_EQ(scan.plan.entries.back().state.eventIndex, total);
    EXPECT_EQ(scan.plan.lastEvent(1) - scan.plan.firstEvent(1), 0u);

    std::string seqPath = tmpFile("pt_epoch_empty_seq.ptpk");
    u64 seqRefs = sequentialPacked(s, seqPath);
    ASSERT_GT(seqRefs, 0u);

    std::string out = tmpFile("pt_epoch_empty_par.ptpk");
    epoch::RunOptions ro;
    ro.jobs = 2;
    epoch::RunResult run = epoch::runEpochs(s, scan.plan, out, ro);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_TRUE(run.divergences.empty());
    ASSERT_EQ(run.epochs.size(), 2u);
    EXPECT_EQ(run.epochs[1].events, 0u);
    EXPECT_TRUE(run.epochs[1].verified);
    EXPECT_TRUE(readFileBytes(out) == readFileBytes(seqPath));
    std::remove(out.c_str());
    std::remove(seqPath.c_str());
}

} // namespace
} // namespace pt
