/**
 * @file
 * The chaos harness: hundreds of seeded fault schedules driven
 * through the supervised-job machinery, asserting the robustness
 * contract — every run ends in clean success, structured degradation
 * (quarantine), or a resumable journal state. Never a hang, never a
 * crash, never a silently wrong artifact.
 *
 * Three layers, ~208 schedules total:
 *  - 100 supervisor schedules: file-writing items under seeded I/O
 *    faults (failed and torn atomic writes, including on the journal
 *    itself) plus seeded worker misbehaviour (throws, bad_alloc,
 *    heartbeat stalls caught by the watchdog, plain failures).
 *  - 100 packed-sweep job schedules under seeded I/O faults, each
 *    checked against a fault-free reference CSV after resume.
 *  - 8 epoch-replay job schedules under seeded I/O faults, each
 *    checked byte-identical against a fault-free reference trace.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/binio.h"
#include "base/iohooks.h"
#include "cache/cache.h"
#include "core/palmsim.h"
#include "epoch/epochrunner.h"
#include "fault/chaos.h"
#include "super/jobs.h"
#include "super/journal.h"
#include "super/supervisor.h"
#include "trace/packedtrace.h"
#include "workload/usermodel.h"

namespace pt
{
namespace
{

std::string
tmpFile(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<u8>
readFileBytes(const std::string &path)
{
    std::vector<u8> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        bytes.clear();
    std::fclose(f);
    return bytes;
}

/** Installs an injector for one scope; uninstalls even on assert. */
class FaultScope
{
  public:
    explicit FaultScope(io::FaultInjector *inj)
    {
        io::setFaultInjector(inj);
    }
    ~FaultScope() { io::setFaultInjector(nullptr); }
};

// ---------------------------------------------------------------------
// Layer 1: supervisor schedules (I/O + worker fault matrix)

/** Deterministic artifact payload for (schedule, item). */
std::vector<u8>
artifactPayload(u64 schedule, u64 item)
{
    BinWriter w;
    for (u64 k = 0; k < 16; ++k)
        w.put64(schedule * 1'000'003 + item * 97 + k);
    return w.takeBytes();
}

TEST(ChaosHarness, SupervisorSchedulesTerminateCleanly)
{
    constexpr u64 kSchedules = 100;
    constexpr u64 kItems = 6;
    u64 resumableJournals = 0;
    u64 faultsInjected = 0;

    for (u64 schedule = 0; schedule < kSchedules; ++schedule) {
        SCOPED_TRACE("schedule " + std::to_string(schedule));
        const std::string dir =
            tmpFile("chaos_sup_" + std::to_string(schedule));
        const std::string journalPath = dir + ".ptjl";

        fault::IoFaultScript io;
        io.seedRandom(schedule, /*faultPerMille=*/60,
                      /*tornPerMille=*/300);
        fault::WorkerFaultScript workers(schedule,
                                         /*faultPerMille=*/250);
        std::vector<std::atomic<u32>> attempts(kItems);

        // The fault-free item body, also the resume pass below.
        auto cleanFn = [&](u64 i) {
            super::ItemOutcome out;
            const std::string path =
                dir + "." + std::to_string(i) + ".art";
            BinWriter w;
            std::vector<u8> payload = artifactPayload(schedule, i);
            w.putBytes(payload.data(), payload.size());
            if (!w.writeFile(path)) {
                out.error = "artifact write failed";
                return out;
            }
            out.ok = true;
            out.artifact = path;
            out.artifactFnv = super::fnvFile(path);
            return out;
        };
        // decide() keys on (item, attempt), so a retry of a
        // misbehaving attempt rolls a fresh decision and every
        // schedule terminates (or quarantines, which also counts).
        auto itemFn = [&](u64 i, CancelToken &tok) {
            u32 attempt = attempts[i].fetch_add(1);
            auto kind = workers.decide(i, attempt);
            fault::WorkerFaultScript::act(kind, tok,
                                          /*maxStallMs=*/3000);
            if (kind == fault::WorkerFaultScript::Kind::Fail) {
                super::ItemOutcome out;
                out.error = "scripted failure";
                return out;
            }
            if (tok.cancelled()) {
                super::ItemOutcome out;
                out.error = "stalled until cancelled";
                return out;
            }
            return cleanFn(i);
        };

        super::JournalWriter journal;
        super::JobSpec spec;
        spec.kind = super::JobKind::None;
        spec.totalItems = kItems;
        super::SuperOptions opts;
        opts.jobs = 1 + static_cast<unsigned>(schedule % 3);
        opts.maxAttempts = 3;
        opts.deadlineMs = 80;
        opts.watchdogPollMs = 10;
        opts.backoffBaseMs = 1;
        opts.backoffSeed = schedule;

        super::SuperResult res;
        {
            FaultScope scope(&io);
            bool journalOk = journal.open(journalPath, spec);
            opts.journal = journalOk ? &journal : nullptr;
            res = super::superviseItems(
                kItems,
                [&](u64 i, CancelToken &tok) {
                    return itemFn(i, tok);
                },
                opts);
            journal.close();
        }
        faultsInjected += io.injected();

        // Contract: no hang (we got here), no interruption (no global
        // cancel), every item accounted for.
        EXPECT_FALSE(res.interrupted);
        EXPECT_TRUE(res.ok);
        EXPECT_EQ(res.itemsDone + res.itemsQuarantined, kItems);

        // If the journal survived its own faults, it must be
        // resumable: parse it, skip verified Done items, and finish
        // the job fault-free.
        super::JournalData data;
        if (!super::loadJournal(journalPath, data).ok())
            continue; // journal lost to injected faults — no resume
        ++resumableJournals;
        std::vector<bool> skip(kItems, false);
        u64 expectSkipped = 0;
        for (const auto &rec : data.latestPerItem()) {
            if (rec.state != super::ItemState::Done)
                continue;
            bool readable = false;
            u64 f = super::fnvFile(rec.artifact, &readable);
            if (readable && f == rec.artifactFnv) {
                skip[static_cast<std::size_t>(rec.item)] = true;
                ++expectSkipped;
            }
        }
        super::SuperOptions cleanOpts;
        cleanOpts.jobs = 2;
        cleanOpts.skip = skip;
        auto clean = super::superviseItems(
            kItems,
            [&](u64 i, CancelToken &) { return cleanFn(i); },
            cleanOpts);
        EXPECT_FALSE(clean.interrupted);
        EXPECT_TRUE(clean.ok);
        EXPECT_EQ(clean.itemsQuarantined, 0u);
        EXPECT_EQ(clean.itemsSkipped, expectSkipped);
        EXPECT_EQ(clean.itemsSkipped + clean.itemsDone, kItems);
    }

    // The matrix must actually bite: most schedules journal, and the
    // seeded roll injects a healthy number of faults overall.
    EXPECT_GE(resumableJournals, kSchedules / 2);
    EXPECT_GT(faultsInjected, kSchedules);
}

// ---------------------------------------------------------------------
// Layer 2: packed-sweep job schedules

std::string
chaosPackedTrace()
{
    static std::string path;
    if (!path.empty())
        return path;
    path = tmpFile("chaos_sweep.ptpk");
    trace::PackedTraceWriter w(path, 256);
    u64 x = 99;
    for (u64 i = 0; i < 1'200; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        u64 v = x * 0x2545F4914F6CDD1Dull;
        w.add(static_cast<u32>(v), static_cast<u8>(v >> 32) % 3,
              static_cast<u8>(v >> 40) % 2);
    }
    EXPECT_TRUE(w.close());
    return path;
}

std::vector<cache::CacheConfig>
chaosConfigs()
{
    std::vector<cache::CacheConfig> configs;
    for (u32 size : {256u, 1024u}) {
        for (u32 assoc : {1u, 2u}) {
            cache::CacheConfig c;
            c.sizeBytes = size;
            c.lineBytes = 16;
            c.assoc = assoc;
            configs.push_back(c);
        }
    }
    return configs;
}

TEST(ChaosHarness, SweepJobSchedulesEndCleanDegradedOrResumable)
{
    constexpr u64 kSchedules = 100;
    const std::string trace = chaosPackedTrace();
    const auto configs = chaosConfigs();

    // Fault-free reference CSV.
    const std::string refCsv = tmpFile("chaos_sweep_ref.csv");
    {
        super::JobOptions jo;
        jo.jobs = 2;
        auto ref = super::runSweepJob(trace, configs, refCsv, jo);
        ASSERT_TRUE(ref.ok) << ref.error;
    }
    const std::vector<u8> refBytes = readFileBytes(refCsv);
    ASSERT_FALSE(refBytes.empty());

    u64 clean = 0, degraded = 0, resumed = 0, lost = 0;
    for (u64 schedule = 0; schedule < kSchedules; ++schedule) {
        SCOPED_TRACE("schedule " + std::to_string(schedule));
        const std::string csv =
            tmpFile("chaos_sweep_" + std::to_string(schedule) + ".csv");
        const std::string journalPath =
            tmpFile("chaos_sweep_" + std::to_string(schedule) +
                    ".ptjl");

        fault::IoFaultScript io;
        io.seedRandom(schedule * 7919 + 1, /*faultPerMille=*/50,
                      /*tornPerMille=*/300);
        super::JobOptions jo;
        jo.jobs = (schedule % 2) ? 2 : 1;
        jo.maxAttempts = 3;
        jo.backoffBaseMs = 1;
        jo.backoffSeed = schedule;
        jo.journalPath = journalPath;

        super::JobResult full;
        {
            FaultScope scope(&io);
            full = super::runSweepJob(trace, configs, csv, jo);
        }

        if (full.ok && !full.degraded) {
            EXPECT_EQ(readFileBytes(csv), refBytes);
            ++clean;
            continue;
        }
        if (full.ok && full.degraded) {
            // Structured degradation: the CSV exists and carries a
            // quarantined row; the journal ends with a Degraded
            // footer.
            super::JournalData data;
            ASSERT_TRUE(super::loadJournal(journalPath, data).ok());
            EXPECT_TRUE(data.hasFooter);
            ++degraded;
            continue;
        }

        // Failed run: the journal must either be resumable to the
        // reference output, or lost entirely with an error reported.
        EXPECT_FALSE(full.error.empty());
        super::JournalData data;
        if (!super::loadJournal(journalPath, data).ok()) {
            ++lost;
            continue;
        }
        auto r2 = super::resumeJob(journalPath, super::JobOptions{});
        EXPECT_TRUE(r2.ok || r2.nothingToDo) << r2.error;
        if (r2.ok && !r2.degraded && !r2.nothingToDo) {
            EXPECT_EQ(readFileBytes(csv), refBytes);
        }
        ++resumed;
    }

    EXPECT_EQ(clean + degraded + resumed + lost, kSchedules);
    EXPECT_GT(clean, 0u) << "fault rate too hot: no clean run";
    EXPECT_GT(resumed + degraded + lost, 0u)
        << "fault rate too cold: chaos never bit";
}

// ---------------------------------------------------------------------
// Layer 3: epoch-replay job schedules

TEST(ChaosHarness, EpochJobSchedulesResumeByteIdentical)
{
    workload::UserModelConfig cfg;
    cfg.seed = 21;
    cfg.interactions = 3;
    cfg.meanIdleTicks = 1'000;
    core::Session s = core::PalmSimulator::collect(cfg);
    const std::string sessionBase = tmpFile("chaos_epoch_session");
    ASSERT_TRUE(s.save(sessionBase));

    epoch::ScanOptions so;
    so.epochs = 4;
    auto scan = epoch::scanSession(s, so);
    ASSERT_TRUE(scan.ok) << scan.error;
    const std::string planPath = tmpFile("chaos_epoch_plan.ptep");
    ASSERT_TRUE(scan.plan.save(planPath));

    // Fault-free reference trace.
    const std::string refOut = tmpFile("chaos_epoch_ref.ptpk");
    {
        super::JobOptions jo;
        jo.jobs = 2;
        auto ref = super::runEpochJob(s, sessionBase, scan.plan,
                                      planPath, refOut, jo);
        ASSERT_TRUE(ref.ok) << ref.error;
    }
    const std::vector<u8> refBytes = readFileBytes(refOut);
    ASSERT_FALSE(refBytes.empty());

    constexpr u64 kSchedules = 8;
    for (u64 schedule = 0; schedule < kSchedules; ++schedule) {
        SCOPED_TRACE("schedule " + std::to_string(schedule));
        const std::string out =
            tmpFile("chaos_epoch_" + std::to_string(schedule) +
                    ".ptpk");
        const std::string journalPath =
            tmpFile("chaos_epoch_" + std::to_string(schedule) +
                    ".ptjl");

        fault::IoFaultScript io;
        io.seedRandom(schedule * 104'729 + 3, /*faultPerMille=*/25,
                      /*tornPerMille=*/400);
        super::JobOptions jo;
        jo.jobs = (schedule % 2) ? 2 : 1;
        jo.maxAttempts = 4;
        jo.backoffBaseMs = 1;
        jo.backoffSeed = schedule;
        jo.journalPath = journalPath;

        super::JobResult full;
        {
            FaultScope scope(&io);
            full = super::runEpochJob(s, sessionBase, scan.plan,
                                      planPath, out, jo);
        }

        if (full.ok && !full.degraded) {
            EXPECT_EQ(readFileBytes(out), refBytes);
            continue;
        }
        // Anything else must leave a resumable (or finalized)
        // journal; the fault-free resume must converge on the
        // reference bytes unless items were quarantined.
        super::JournalData data;
        if (!super::loadJournal(journalPath, data).ok())
            continue; // journal itself lost to faults
        auto r2 = super::resumeJob(journalPath, super::JobOptions{});
        EXPECT_TRUE(r2.ok || r2.nothingToDo) << r2.error;
        if (r2.ok && !r2.degraded && !r2.nothingToDo) {
            EXPECT_EQ(readFileBytes(out), refBytes);
        }
    }
}

} // namespace
} // namespace pt
